"""Vector instruction semantics against NumPy references."""

import numpy as np
import pytest

from repro.functional import Executor
from repro.isa import F, ProgramBuilder, S, V
from repro.isa.registers import MVL


def vec_program(setup, n=8):
    """Builder preloaded with input arrays x (i64), xf (f64), y, yf and
    an output area; ``setup(b)`` emits the body.  Returns (ex, prog)."""
    rng = np.random.default_rng(99)
    xi = rng.integers(-1000, 1000, size=n, dtype=np.int64)
    yi = rng.integers(-1000, 1000, size=n, dtype=np.int64)
    xf = rng.standard_normal(n)
    yf = rng.standard_normal(n)
    b = ProgramBuilder("vec", memory_kib=64)
    b.data_i64("x", xi)
    b.data_i64("y", yi)
    b.data_f64("xf", xf)
    b.data_f64("yf", yf)
    b.space("out", max(n, MVL) * 8)
    b.op("li", S(1), n)
    b.op("setvl", S(2), S(1))
    b.la(S(3), "x")
    b.la(S(4), "y")
    b.la(S(5), "xf")
    b.la(S(6), "yf")
    b.la(S(7), "out")
    b.op("vld", V(1), (0, S(3)))
    b.op("vld", V(2), (0, S(4)))
    b.op("vld", V(3), (0, S(5)))   # fp bits
    b.op("vld", V(4), (0, S(6)))
    setup(b)
    b.op("halt")
    prog = b.build()
    ex = Executor(prog, num_threads=1)
    ex.run()
    return ex, prog, xi, yi, xf, yf


def out_i64(ex, prog, n=8):
    return ex.mem.read_i64_array(prog.symbol_addr("out"), n)


def out_f64(ex, prog, n=8):
    return ex.mem.read_f64_array(prog.symbol_addr("out"), n)


class TestIntegerVector:
    @pytest.mark.parametrize("op,ref", [
        ("vadd.vv", lambda a, b: a + b),
        ("vsub.vv", lambda a, b: a - b),
        ("vmul.vv", lambda a, b: a * b),
        ("vand.vv", lambda a, b: a & b),
        ("vor.vv", lambda a, b: a | b),
        ("vxor.vv", lambda a, b: a ^ b),
        ("vmin.vv", np.minimum),
        ("vmax.vv", np.maximum),
    ])
    def test_vv(self, op, ref):
        def body(b):
            b.op(op, V(5), V(1), V(2))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, yi, *_ = vec_program(body)
        assert np.array_equal(out_i64(ex, prog), ref(xi, yi))

    def test_vdiv_truncates_and_guards_zero(self):
        def body(b):
            b.op("vdiv.vv", V(5), V(1), V(2))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, yi, *_ = vec_program(body)
        want = np.where(yi != 0, (np.abs(xi) // np.abs(np.where(yi == 0, 1, yi)))
                        * np.sign(xi) * np.sign(np.where(yi == 0, 1, yi)), 0)
        assert np.array_equal(out_i64(ex, prog), want)

    def test_vs_broadcast(self):
        def body(b):
            b.op("li", S(8), 5)
            b.op("vadd.vs", V(5), V(1), S(8))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        assert np.array_equal(out_i64(ex, prog), xi + 5)

    def test_vrsub(self):
        def body(b):
            b.op("li", S(8), 100)
            b.op("vrsub.vs", V(5), V(1), S(8))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        assert np.array_equal(out_i64(ex, prog), 100 - xi)

    def test_shifts(self):
        def body(b):
            b.op("li", S(8), 3)
            b.op("vsll.vs", V(5), V(1), S(8))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        assert np.array_equal(out_i64(ex, prog), xi << 3)

    def test_vsrl_logical(self):
        def body(b):
            b.op("li", S(8), 60)
            b.op("vsrl.vs", V(5), V(1), S(8))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        want = (xi.view(np.uint64) >> np.uint64(60)).view(np.int64)
        assert np.array_equal(out_i64(ex, prog), want)


class TestFloatVector:
    @pytest.mark.parametrize("op,ref", [
        ("vfadd.vv", lambda a, b: a + b),
        ("vfsub.vv", lambda a, b: a - b),
        ("vfmul.vv", lambda a, b: a * b),
        ("vfdiv.vv", lambda a, b: a / b),
        ("vfmin.vv", np.minimum),
        ("vfmax.vv", np.maximum),
    ])
    def test_vv(self, op, ref):
        def body(b):
            b.op(op, V(5), V(3), V(4))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, _, _, xf, yf = vec_program(body)
        assert np.allclose(out_f64(ex, prog), ref(xf, yf))

    def test_vs_fp(self):
        def body(b):
            b.op("fli", F(1), 2.5)
            b.op("vfmul.vs", V(5), V(3), F(1))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, _, _, xf, _ = vec_program(body)
        assert np.allclose(out_f64(ex, prog), xf * 2.5)

    def test_unary(self):
        def body(b):
            b.op("vfabs.v", V(5), V(3))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, _, _, xf, _ = vec_program(body)
        assert np.allclose(out_f64(ex, prog), np.abs(xf))

    def test_vfsqrt_negative_nan(self):
        def body(b):
            b.op("vfsqrt.v", V(5), V(3))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, _, _, xf, _ = vec_program(body)
        got = out_f64(ex, prog)
        want = np.sqrt(np.where(xf >= 0, xf, np.nan))
        assert np.allclose(got, want, equal_nan=True)

    def test_conversions(self):
        def body(b):
            b.op("vitof.v", V(5), V(1))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        assert np.allclose(out_f64(ex, prog), xi.astype(np.float64))

    def test_splats(self):
        def body(b):
            b.op("fli", F(1), -1.5)
            b.op("vfmv.s", V(5), F(1))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, *_ = vec_program(body)
        assert np.all(out_f64(ex, prog) == -1.5)


class TestMasks:
    def test_compare_then_merge(self):
        def body(b):
            b.op("vslt.vv", V(1), V(2))          # vm = x < y
            b.op("vmerge.vv", V(5), V(1), V(2))  # x where mask else y
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, yi, *_ = vec_program(body)
        assert np.array_equal(out_i64(ex, prog), np.minimum(xi, yi))

    def test_masked_execution_preserves_inactive(self):
        def body(b):
            b.op("vmv.v", V(5), V(2))            # out = y
            b.op("vslt.vs", V(1), S(0))          # mask = x < 0
            b.op("vadd.vs", V(5), V(1), S(0), masked=True)  # out[m] = x[m]
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, yi, *_ = vec_program(body)
        want = np.where(xi < 0, xi, yi)
        assert np.array_equal(out_i64(ex, prog), want)

    def test_vmpop_vmfirst(self):
        def body(b):
            b.op("vslt.vs", V(1), S(0))
            b.op("vmpop", S(8))
            b.op("vmfirst", S(9))
            b.op("st", S(8), (0, S(7)))
            b.op("st", S(9), (8, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        out = out_i64(ex, prog, 2)
        assert out[0] == int((xi < 0).sum())
        nz = np.nonzero(xi < 0)[0]
        assert out[1] == (nz[0] if nz.size else -1)

    def test_viota(self):
        def body(b):
            b.op("vslt.vs", V(1), S(0))
            b.op("viota.m", V(5))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        m = (xi < 0).astype(np.int64)
        want = np.concatenate(([0], np.cumsum(m)[:-1]))
        assert np.array_equal(out_i64(ex, prog), want)

    def test_vid(self):
        def body(b):
            b.op("vid.v", V(5))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, *_ = vec_program(body)
        assert np.array_equal(out_i64(ex, prog), np.arange(8))

    def test_vcompress(self):
        def body(b):
            b.op("vslt.vs", V(1), S(0))       # mask = x < 0
            b.op("li", S(8), 0)
            b.op("vmv.s", V(5), S(8))         # clear destination
            b.op("vcompress.m", V(5), V(1))
            b.op("vst", V(5), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        got = out_i64(ex, prog)
        neg = xi[xi < 0]
        assert np.array_equal(got[:neg.size], neg)
        assert np.all(got[neg.size:] == 0)


class TestReductions:
    @pytest.mark.parametrize("op,ref", [
        ("vredsum", np.sum), ("vredmin", np.min), ("vredmax", np.max)])
    def test_int(self, op, ref):
        def body(b):
            b.op(op, S(8), V(1))
            b.op("st", S(8), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        assert out_i64(ex, prog, 1)[0] == ref(xi)

    @pytest.mark.parametrize("op,ref", [
        ("vfredsum", np.sum), ("vfredmin", np.min), ("vfredmax", np.max)])
    def test_fp(self, op, ref):
        def body(b):
            b.op(op, F(1), V(3))
            b.op("fst", F(1), (0, S(7)))
        ex, prog, _, _, xf, _ = vec_program(body)
        assert np.isclose(out_f64(ex, prog, 1)[0], ref(xf))

    def test_masked_reduction(self):
        def body(b):
            b.op("vslt.vs", V(1), S(0))
            b.op("vredsum", S(8), V(1), masked=True)
            b.op("st", S(8), (0, S(7)))
        ex, prog, xi, *_ = vec_program(body)
        assert out_i64(ex, prog, 1)[0] == xi[xi < 0].sum()


class TestElementAccess:
    def test_vext_vins(self):
        def body(b):
            b.op("li", S(8), 3)
            b.op("vext", S(9), V(1), S(8))       # s9 = x[3]
            b.op("li", S(10), 0)
            b.op("vins", V(2), S(9), S(10))      # y[0] = x[3]
            b.op("vst", V(2), (0, S(7)))
        ex, prog, xi, yi, *_ = vec_program(body)
        want = yi.copy()
        want[0] = xi[3]
        assert np.array_equal(out_i64(ex, prog), want)

    def test_vext_out_of_range(self):
        from repro.functional import ExecutionError

        def body(b):
            b.op("li", S(8), 64)
            b.op("vext", S(9), V(1), S(8))
        with pytest.raises(ExecutionError):
            vec_program(body)


class TestVectorMemory:
    def test_strided_load_store(self):
        b = ProgramBuilder("s", memory_kib=64)
        data = np.arange(32, dtype=np.int64)
        b.data_i64("x", data)
        b.space("out", 8 * 8)
        b.op("li", S(1), 8)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "x")
        b.la(S(4), "out")
        b.op("li", S(5), 32)            # byte stride of 4 elements
        b.op("vlds", V(1), (0, S(3)), S(5))
        b.op("vst", V(1), (0, S(4)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        assert np.array_equal(got, data[::4])

    def test_gather_scatter(self):
        b = ProgramBuilder("g", memory_kib=64)
        data = np.arange(16, dtype=np.int64) * 10
        idx = np.array([3, 0, 7, 12], dtype=np.int64) * 8  # byte offsets
        b.data_i64("x", data)
        b.data_i64("idx", idx)
        b.space("out", 16 * 8)
        b.op("li", S(1), 4)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "idx")
        b.op("vld", V(2), (0, S(3)))
        b.la(S(4), "x")
        b.op("vldx", V(1), (0, S(4)), V(2))
        b.la(S(5), "out")
        b.op("vstx", V(1), (0, S(5)), V(2))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        out = ex.mem.read_i64_array(prog.symbol_addr("out"), 16)
        for off in idx // 8:
            assert out[off] == data[off]

    def test_masked_load_leaves_inactive_unchanged(self):
        b = ProgramBuilder("m", memory_kib=64)
        b.data_i64("x", np.arange(8, dtype=np.int64))
        b.space("out", 64)
        b.op("li", S(1), 8)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "x")
        b.op("vld", V(1), (0, S(3)))
        b.op("li", S(4), 4)
        b.op("vslt.vs", V(1), S(4))        # mask = x < 4
        b.op("li", S(5), 77)
        b.op("vmv.s", V(2), S(5))          # all 77
        b.op("vld", V(2), (0, S(3)), masked=True)
        b.la(S(6), "out")
        b.op("vst", V(2), (0, S(6)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        want = np.where(np.arange(8) < 4, np.arange(8), 77)
        assert np.array_equal(got, want)


class TestVL:
    def test_setvl_clamps(self):
        b = ProgramBuilder("vl", memory_kib=64)
        b.space("out", 16)
        b.op("li", S(1), 1000)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "out")
        b.op("st", S(2), (0, S(3)))
        b.op("li", S(4), -5)
        b.op("setvl", S(5), S(4))
        b.op("st", S(5), (8, S(3)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        out = ex.mem.read_i64_array(prog.symbol_addr("out"), 2)
        assert out.tolist() == [MVL, 0]

    def test_ops_respect_vl(self):
        b = ProgramBuilder("vl2", memory_kib=64)
        b.space("out", MVL * 8)
        b.op("li", S(1), 3)
        b.op("setvl", S(2), S(1))
        b.op("li", S(4), 9)
        b.op("vmv.s", V(1), S(4))
        b.la(S(3), "out")
        b.op("vst", V(1), (0, S(3)))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        out = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        assert out.tolist() == [9, 9, 9, 0, 0, 0, 0, 0]
