"""Repository-level consistency: docs exist, references resolve, the
generated ISA reference is up to date."""

from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDeliverables:
    @pytest.mark.parametrize("rel", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml",
        "docs/isa.md", "docs/timing-model.md", "docs/workloads.md",
        "docs/assembly-tutorial.md", "docs/observability.md",
        "docs/architecture.md", "docs/verification.md",
    ])
    def test_file_exists(self, rel):
        assert (ROOT / rel).is_file(), rel

    def test_examples_referenced_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for line in readme.splitlines():
            if "examples/" in line and ".py" in line:
                name = line.split("examples/")[1].split(".py")[0]
                assert (ROOT / "examples" / f"{name}.py").is_file(), name

    def test_benchmarks_cover_every_figure_and_table(self):
        names = {p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")}
        assert {"bench_fig1_lane_scaling", "bench_fig3_vlt_speedup",
                "bench_fig4_utilization", "bench_fig5_design_space",
                "bench_fig6_scalar_threads", "bench_area_model",
                "bench_table4_characteristics"} <= names

    def test_isa_reference_up_to_date(self):
        from repro.isa.doc import isa_reference_md
        on_disk = (ROOT / "docs" / "isa.md").read_text()
        assert on_disk == isa_reference_md(), \
            "regenerate with: python -m repro.isa.doc docs/isa.md"

    def test_design_md_lists_every_experiment(self):
        design = (ROOT / "DESIGN.md").read_text()
        for exp in ("Figure 1", "Table 1", "Table 2", "Table 4",
                    "Figure 3", "Figure 4", "Figure 5", "Figure 6"):
            assert exp in design, exp


class TestDocsGraph:
    def test_every_docs_page_reachable_from_readme(self):
        """Every page under docs/ is linked from README (directly)."""
        readme = (ROOT / "README.md").read_text()
        for page in sorted((ROOT / "docs").glob("*.md")):
            assert f"docs/{page.name}" in readme, \
                f"docs/{page.name} is not linked from README.md"

    def test_doc_cross_links_resolve(self):
        """Relative .md links inside docs/ point at real pages."""
        import re
        for page in sorted((ROOT / "docs").glob("*.md")):
            for target in re.findall(r"\]\(([\w-]+\.md)\)",
                                     page.read_text()):
                assert (ROOT / "docs" / target).is_file(), \
                    f"{page.name} links to missing docs/{target}"

    def test_every_cli_verb_documented(self):
        """Each vlt-repro verb appears in at least one doc or README."""
        from repro.harness.cli import CLI_VERBS
        corpus = (ROOT / "README.md").read_text()
        for page in (ROOT / "docs").glob("*.md"):
            corpus += page.read_text()
        for verb in CLI_VERBS:
            assert verb in corpus, \
                f"CLI verb {verb!r} appears in no doc page or README"


class TestIsaDocSemantics:
    """Parse the committed docs/isa.md opcode tables back into data and
    cross-check against the live registry -- catches hand edits that the
    full-text regeneration test alone would also catch, but pinpoints
    *which* opcode drifted and survives header/prose rewording."""

    @staticmethod
    def _parse_tables():
        import re
        rows = {}
        for line in (ROOT / "docs" / "isa.md").read_text().splitlines():
            m = re.match(r"\| `([\w./]+)` \| (.*?) \| (\w+) \| (\d+) \|",
                         line)
            if m:
                rows[m.group(1)] = (m.group(3), int(m.group(4)))
        return rows

    def test_opcode_tables_match_registry(self):
        from repro.isa.opcodes import OPCODES
        rows = self._parse_tables()
        assert set(rows) == set(OPCODES), (
            f"docs/isa.md missing {sorted(set(OPCODES) - set(rows))}, "
            f"extra {sorted(set(rows) - set(OPCODES))}; regenerate with: "
            f"python -m repro.isa.doc docs/isa.md")
        for name, (pool, latency) in rows.items():
            spec = OPCODES[name]
            assert (pool, latency) == (spec.pool, spec.latency), \
                f"{name}: doc says pool={pool} latency={latency}, " \
                f"registry says {spec.pool}/{spec.latency}"
