"""Repository-level consistency: docs exist, references resolve, the
generated ISA reference is up to date."""

from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDeliverables:
    @pytest.mark.parametrize("rel", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml",
        "docs/isa.md", "docs/timing-model.md", "docs/workloads.md",
        "docs/assembly-tutorial.md", "docs/observability.md",
    ])
    def test_file_exists(self, rel):
        assert (ROOT / rel).is_file(), rel

    def test_examples_referenced_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for line in readme.splitlines():
            if "examples/" in line and ".py" in line:
                name = line.split("examples/")[1].split(".py")[0]
                assert (ROOT / "examples" / f"{name}.py").is_file(), name

    def test_benchmarks_cover_every_figure_and_table(self):
        names = {p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")}
        assert {"bench_fig1_lane_scaling", "bench_fig3_vlt_speedup",
                "bench_fig4_utilization", "bench_fig5_design_space",
                "bench_fig6_scalar_threads", "bench_area_model",
                "bench_table4_characteristics"} <= names

    def test_isa_reference_up_to_date(self):
        from repro.isa.doc import isa_reference_md
        on_disk = (ROOT / "docs" / "isa.md").read_text()
        assert on_disk == isa_reference_md(), \
            "regenerate with: python -m repro.isa.doc docs/isa.md"

    def test_design_md_lists_every_experiment(self):
        design = (ROOT / "DESIGN.md").read_text()
        for exp in ("Figure 1", "Table 1", "Table 2", "Table 4",
                    "Figure 3", "Figure 4", "Figure 5", "Figure 6"):
            assert exp in design, exp
