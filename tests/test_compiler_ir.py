"""Compiler IR: affine algebra, references, strides, kernels."""

import numpy as np
import pytest

from repro.compiler import (Affine, Array, Assign, Bin, Const, Kernel,
                            LoadExpr, Loop, Reduce, Sqrt, Var, fmax, fmin,
                            sqrt)


class TestAffine:
    def setup_method(self):
        self.i = Var("i")
        self.j = Var("j")

    def test_var_arithmetic_builds_affine(self):
        a = 2 * self.i + 3
        assert isinstance(a, Affine)
        assert a.coef(self.i) == 2
        assert a.const == 3

    def test_addition_merges_terms(self):
        a = (self.i + self.j) + (self.i - 1)
        assert a.coef(self.i) == 2
        assert a.coef(self.j) == 1
        assert a.const == -1

    def test_zero_coefficients_dropped(self):
        a = self.i - self.i
        assert a.is_const
        assert a.const == 0

    def test_negation_and_rsub(self):
        a = 5 - self.i
        assert a.coef(self.i) == -1
        assert a.const == 5

    def test_scale_by_nonint_rejected(self):
        with pytest.raises(TypeError):
            self.i * 1.5

    def test_of_conversions(self):
        assert Affine.of(7).const == 7
        assert Affine.of(self.i).coef(self.i) == 1
        with pytest.raises(TypeError):
            Affine.of("x")


class TestRefs:
    def setup_method(self):
        self.i, self.j = Var("i"), Var("j")
        self.A = Array("A", (10, 20))

    def test_flat_affine_row_major(self):
        r = self.A[self.i, self.j]
        flat = r.flat_affine()
        assert flat.coef(self.i) == 20
        assert flat.coef(self.j) == 1

    def test_stride_wrt(self):
        r = self.A[self.i, self.j]
        assert r.stride_wrt(self.i) == 20
        assert r.stride_wrt(self.j) == 1
        assert r.stride_wrt(Var("k")) == 0

    def test_constant_offset(self):
        r = self.A[self.i + 1, 2 * self.j + 3]
        flat = r.flat_affine()
        assert flat.const == 20 + 3
        assert flat.coef(self.j) == 2

    def test_subscript_arity_checked(self):
        with pytest.raises(IndexError):
            self.A[self.i]

    def test_1d_array(self):
        x = Array("x", (16,))
        assert x[self.i].stride_wrt(self.i) == 1

    def test_array_init_shape_checked(self):
        with pytest.raises(ValueError):
            Array("bad", (4,), np.zeros((2, 2)))


class TestExpressions:
    def setup_method(self):
        self.i = Var("i")
        self.x = Array("x", (8,))
        self.y = Array("y", (8,))

    def test_ref_arithmetic_promotes(self):
        e = self.x[self.i] * self.y[self.i] + 1.0
        assert isinstance(e, Bin)
        assert e.op == "+"

    def test_constants_wrapped(self):
        e = 2.0 * self.x[self.i]
        assert isinstance(e.a, Const)

    def test_min_max_sqrt_helpers(self):
        assert fmin(self.x[self.i], 0.0).op == "min"
        assert fmax(1.0, self.x[self.i]).op == "max"
        assert isinstance(sqrt(self.x[self.i]), Sqrt)

    def test_reduce_op_validated(self):
        with pytest.raises(ValueError):
            Reduce("*", self.x[self.i], Const(1.0))


class TestKernel:
    def test_arrays_discovered_in_order(self):
        i = Var("i")
        a, b, c = Array("a", (8,)), Array("b", (8,)), Array("c", (8,))
        k = Kernel("k", [
            Loop(i, 8, [Assign(c[i], a[i] + b[i])], parallel=True)])
        assert [arr.name for arr in k.arrays()] == ["c", "a", "b"]

    def test_nested_and_reduce_arrays(self):
        i, j = Var("i"), Var("j")
        a = Array("a", (4, 4))
        s = Array("s", (4, 1))
        k = Kernel("k", [
            Loop(i, 4, [
                Loop(j, 4, [Reduce("+", s[i, 0], a[i, j])], parallel=True)],
                parallel=True)])
        assert {arr.name for arr in k.arrays()} == {"a", "s"}
