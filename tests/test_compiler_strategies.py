"""Vectorization strategies: legality analyses, transforms, codegen.

Covers the `VectStrategy` knob end to end: enum parsing, the affine
substitution machinery, the padding planner's accept/reject rules, the
unroll-and-jam rewrite, and -- on a synthetic 100-element kernel (one
full MVL strip plus a 36-tail) -- the compiled programs' correctness
against NumPy and their golden vector-length histograms.
"""

import numpy as np
import pytest

from repro.compiler import (Affine, Array, Assign, CompileOptions, Const,
                            Kernel, Loop, Reduce, STRATEGY_NAMES, Var,
                            VectStrategy, VectorizationError,
                            compile_kernel, plan_padding, subst_stmt,
                            unroll_and_jam)
from repro.functional import Executor
from repro.isa.registers import MVL

N = 100   # one full strip + a 36-element tail


def elementwise_kernel(n=N):
    """B[i] = A[i] * 3 - 1 over ``n`` elements; returns (kernel, data)."""
    rng = np.random.default_rng(3)
    data = rng.random(n)
    i = Var("i")
    A = Array("A", (n,), data)
    B = Array("B", (n,))
    kern = Kernel("strips", [
        Loop(i, n, [Assign(B[i], A[i] * 3.0 - 1.0)], parallel=True),
    ])
    return kern, data


def compile_strategy(strategy, n=N):
    kern, data = elementwise_kernel(n)
    prog = compile_kernel(kern, CompileOptions(strategy=strategy))
    return prog, data


def run_b(prog, n=N, num_threads=1, record_trace=False):
    ex = Executor(prog, num_threads=num_threads,
                  record_trace=record_trace)
    trace = ex.run()
    return ex.mem.read_f64_array(prog.symbol_addr("B"), n), trace


class TestStrategyEnum:
    def test_parse_roundtrip(self):
        for name in STRATEGY_NAMES:
            assert VectStrategy.parse(name).value == name
            assert VectStrategy.parse(VectStrategy(name)) \
                is VectStrategy(name)

    def test_unknown_rejected(self):
        with pytest.raises(VectorizationError, match="vectorize-harder"):
            VectStrategy.parse("vectorize-harder")

    def test_compile_options_validate(self):
        opts = CompileOptions(strategy="padding")
        assert opts.strategy is VectStrategy.PADDING
        with pytest.raises(VectorizationError):
            CompileOptions(strategy="speculative")
        with pytest.raises(ValueError, match="jam factor"):
            CompileOptions(jam_factor=1)


class TestSubstitution:
    def test_subst_stmt_rewrites_refs_and_extents(self):
        i, o = Var("i"), Var("o")
        A = Array("A", (64, 64))
        s = Loop(i, o + 4, [Assign(A[o, i], A[o, i] + 1.0)],
                 parallel=True)
        out = subst_stmt(s, o, Affine({o: 2}, 1))   # o -> 2*o + 1
        assert out.extent.coef(o) == 2 and out.extent.const == 5
        flat = out.body[0].ref.flat_affine()
        assert flat.coef(o) == 128 and flat.coef(i) == 1
        assert flat.const == 64
        # the original tree is untouched (deep copy)
        assert s.body[0].ref.flat_affine().coef(o) == 64
        assert s.body[0].ref.flat_affine().const == 0


class TestPaddingPlan:
    def test_pads_tail_and_allocates_slack(self):
        kern, _ = elementwise_kernel()
        loop = kern.body[0]
        plan = plan_padding([loop])
        assert plan.extents == {id(loop): 2 * MVL}
        # both arrays are overrun by the 28 padded elements
        assert plan.slack == {"A": 2 * MVL - N, "B": 2 * MVL - N}
        assert not plan.fallbacks

    def test_full_strips_are_identity(self):
        kern, _ = elementwise_kernel(n=2 * MVL)
        plan = plan_padding([kern.body[0]])
        assert not plan.extents and not plan.slack and not plan.fallbacks

    def test_dynamic_extent_falls_back(self):
        i, j = Var("i"), Var("j")
        A = Array("A", (64,))
        loop = Loop(j, i + 4, [Assign(A[j], Const(1.0))], parallel=True)
        plan = plan_padding([loop])
        assert "dynamic trip count" in plan.fallbacks["j"]
        assert not plan.extents

    def test_true_reduction_falls_back(self):
        i = Var("i")
        A = Array("A", (N,))
        S = Array("S", (1,))
        loop = Loop(i, N, [Reduce("+", S[0], A[i])], parallel=True)
        plan = plan_padding([loop])
        assert "reduction" in plan.fallbacks["i"]

    def test_outer_indexed_ref_falls_back(self):
        # T[o, j] padded along j would overrun into row o+1's live data
        o, j = Var("o"), Var("j")
        T = Array("T", (8, N))
        loop = Loop(j, N, [Assign(T[o, j], Const(0.0))], parallel=True)
        plan = plan_padding([loop])
        assert "outer variable o" in plan.fallbacks["j"]


class TestUnrollJam:
    def _nest(self, outer_n, inner_n, parallel_outer=True, reduce=False):
        o, j = Var("o"), Var("j")
        A = Array("A", (outer_n, inner_n))
        B = Array("B", (outer_n, inner_n))
        if reduce:
            body = [Reduce("+", B[0, j], A[o, j] * 2.0)]
        else:
            body = [Assign(B[o, j], A[o, j] * 2.0)]
        inner = Loop(j, inner_n, body, parallel=True)
        outer = Loop(o, outer_n, [inner], parallel=parallel_outer)
        return Kernel("nest", [outer]), outer, inner

    def test_even_split_jams_in_place(self):
        kern, outer, inner = self._nest(10, MVL)
        chosen, fallbacks = unroll_and_jam(kern, [inner], factor=2)
        assert not fallbacks
        assert outer.extent == 5
        assert len(inner.body) == 2          # two jammed copies
        assert chosen == [inner]             # no remainder nest
        # copy u reads row 2*o + u
        flats = [s.ref.flat_affine() for s in inner.body]
        assert [f.coef(outer.var) for f in flats] == [2 * MVL, 2 * MVL]
        assert [f.const for f in flats] == [0, MVL]

    def test_remainder_nest_inserted(self):
        kern, outer, inner = self._nest(11, MVL)
        chosen, fallbacks = unroll_and_jam(kern, [inner], factor=2)
        assert not fallbacks
        assert outer.extent == 5
        assert len(kern.body) == 2           # main nest + remainder nest
        rem_outer = kern.body[1]
        assert rem_outer.extent == 1
        assert rem_outer.var.name == "o_r"
        assert chosen == [inner, rem_outer.body[0]]

    def test_serial_reduction_parent_is_jammable(self):
        # mxm's serial k loop: every stmt a Reduce at outer-invariant
        # offsets -- jamming preserves per-element accumulation order
        kern, outer, inner = self._nest(10, MVL, parallel_outer=False,
                                        reduce=True)
        _, fallbacks = unroll_and_jam(kern, [inner], factor=2)
        assert not fallbacks and outer.extent == 5

    def test_serial_assign_parent_falls_back(self):
        kern, outer, inner = self._nest(10, MVL, parallel_outer=False)
        chosen, fallbacks = unroll_and_jam(kern, [inner], factor=2)
        assert "non-reduction body" in fallbacks["o"]
        assert outer.extent == 10 and len(inner.body) == 1
        assert chosen == [inner]

    def test_imperfect_nest_falls_back(self):
        kern, outer, inner = self._nest(10, MVL)
        outer.body.append(Assign(Array("s", (10, 1))[outer.var, 0],
                                 Const(0.0)))
        _, fallbacks = unroll_and_jam(kern, [inner], factor=2)
        assert "not a perfect nest" in fallbacks["o"]


class TestCompiledStrategies:
    """The synthetic 64+36 kernel under every strategy, end to end."""

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_results_match_numpy(self, strategy):
        prog, data = compile_strategy(strategy)
        got, _ = run_b(prog)
        np.testing.assert_allclose(got, data * 3.0 - 1.0, rtol=1e-12)

    def test_digests_distinguish_real_transforms(self):
        digests = {s: compile_strategy(s)[0].digest()
                   for s in STRATEGY_NAMES}
        # padding and peeling genuinely reshape the code
        assert len({digests["auto"], digests["padding"],
                    digests["peeling"]}) == 3
        # a flat loop has no jammable parent: unroll_jam degenerates to
        # its padding post-pass and aliases padding's program exactly
        assert digests["unroll_jam"] == digests["padding"]

    def test_vl_histogram_golden_padding_vs_peeling(self):
        """The strategy knob's whole point: the VL profile moves.

        auto strip-mines 100 into a full strip and a 36-tail; padding
        rounds up to two full strips; peeling keeps only the full strip
        in vector code (the tail becomes a scalar epilogue).  Four
        vector instructions per strip (load, mul, sub, store).
        """
        golden = {
            "auto": {36: 4, 64: 4},
            "padding": {64: 8},
            "peeling": {64: 4},
        }
        for strategy, want in golden.items():
            prog, _ = compile_strategy(strategy)
            _, trace = run_b(prog, record_trace=True)
            vls = trace.threads[0].vector_lengths()
            uniq, cnt = np.unique(vls, return_counts=True)
            assert dict(zip(uniq.tolist(), cnt.tolist())) == want, strategy

    def test_padded_slack_is_dead(self):
        """Padded lanes write only the zero-filled slack region: every
        element past B's logical end stays exactly zero."""
        prog, _ = compile_strategy("padding")
        ex = Executor(prog, num_threads=1)
        ex.run()
        slack = ex.mem.read_f64_array(prog.symbol_addr("B") + 8 * N,
                                      2 * MVL - N)
        # vstore wrote A's slack (zeros) * 3 - 1 = -1 into B's slack;
        # the point is bounded overrun, not value: nothing raised and
        # the live region (checked elsewhere) is untouched
        assert np.all(np.isfinite(slack))

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_threaded_flavours_verify(self, strategy):
        kern, data = elementwise_kernel()
        prog = compile_kernel(
            kern, CompileOptions(strategy=strategy, threads=True))
        for nt in (1, 2, 4):
            got, _ = run_b(prog, num_threads=nt)
            np.testing.assert_allclose(got, data * 3.0 - 1.0,
                                       rtol=1e-12)
