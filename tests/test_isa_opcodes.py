"""Opcode registry invariants."""

import pytest

from repro.isa.opcodes import OPCODES, OPERAND_KINDS, all_opcodes, spec


class TestRegistry:
    def test_lookup(self):
        assert spec("add").name == "add"
        assert spec("vfadd.vv").is_vector

    def test_unknown_opcode(self):
        with pytest.raises(KeyError):
            spec("frobnicate")

    def test_all_opcodes_nonempty_and_sane_size(self):
        names = all_opcodes()
        # the ISA covers scalar int/fp, memory, control, vector, runtime
        assert len(names) > 100
        assert len(set(names)) == len(names)

    def test_signatures_use_known_kinds(self):
        for s in OPCODES.values():
            for kind in s.sig:
                assert kind in OPERAND_KINDS, (s.name, kind)

    def test_pools_are_known(self):
        for s in OPCODES.values():
            assert s.pool in ("arith", "mem", "varith", "vmem", "none"), s.name

    def test_latencies_positive(self):
        for s in OPCODES.values():
            assert s.latency >= 1, s.name


class TestClassification:
    def test_vector_ops_have_vector_pools(self):
        for s in OPCODES.values():
            if s.pool in ("varith", "vmem"):
                assert s.is_vector, s.name

    def test_memory_flags_consistent(self):
        for s in OPCODES.values():
            if s.is_load or s.is_store:
                assert s.pool in ("mem", "vmem"), s.name
                assert "mem" in s.sig, s.name
            assert not (s.is_load and s.is_store), s.name

    def test_branches(self):
        for name in ("beq", "bne", "blt", "bge"):
            s = spec(name)
            assert s.is_branch and not s.is_uncond
        for name in ("j", "jal", "jr"):
            assert spec(name).is_uncond

    def test_mask_writers(self):
        assert spec("vslt.vv").writes_mask
        assert spec("vfeq.vs").writes_mask
        assert not spec("vadd.vv").writes_mask

    def test_mask_readers(self):
        for name in ("vmerge.vv", "vmpop", "vmfirst", "viota.m"):
            assert spec(name).reads_mask

    def test_masked_suffix_allowed_only_where_declared(self):
        assert spec("vadd.vv").allow_mask
        assert not spec("vslt.vv").allow_mask  # compares define the mask

    def test_strided_and_indexed_memory(self):
        assert spec("vlds").mem_stride and not spec("vlds").mem_indexed
        assert spec("vldx").mem_indexed and not spec("vldx").mem_stride
        assert spec("vstx").mem_indexed and spec("vstx").is_store

    def test_reductions_write_scalars(self):
        for name in ("vredsum", "vredmin", "vredmax"):
            assert spec(name).sig[0] == "sd"
        for name in ("vfredsum", "vfredmin", "vfredmax"):
            assert spec(name).sig[0] == "fd"

    def test_vltcfg_is_the_single_isa_extension(self):
        s = spec("vltcfg")
        assert s.is_vltcfg and s.sig == ("imm",)

    def test_setvl_writes_vl(self):
        s = spec("setvl")
        assert s.writes_vl and not s.is_vector

    def test_vins_reads_its_destination(self):
        assert spec("vins").dst_is_src
        assert spec("vfins").dst_is_src
        assert not spec("vadd.vv").dst_is_src

    def test_has_dst_property(self):
        assert spec("add").has_dst
        assert not spec("st").has_dst
        assert not spec("barrier").has_dst
