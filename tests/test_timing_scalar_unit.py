"""Scalar-unit timing model: widths, dependences, caches, prediction.

These are micro-benchmarks in assembly with assertions on cycle counts
relative to each other (robust against small constant shifts in the
model) plus a few absolute sanity bounds.
"""

import pytest

from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import base_config
from tests.conftest import time_asm


def chain_src(n, dep=True):
    """n scalar adds, either one dependence chain or fully independent."""
    body = []
    for i in range(n):
        if dep:
            body.append("add s1, s1, s2")
        else:
            body.append(f"add s{3 + (i % 8)}, s1, s2")
    return "li s1, 0\nli s2, 1\n" + "\n".join(body)


def warm_phase_cycles(body: str) -> int:
    """Cycles of a *warm* (second) execution of ``body``.

    The body runs twice through the same pcs (so caches and predictors
    warm up) with a barrier after each pass; the second barrier-delimited
    phase is returned.
    """
    src = f"""
    li s20, 0
    li s21, 2
    top:
    {body}
    barrier
    addi s20, s20, 1
    blt s20, s21, top
    halt
    """
    r = time_asm(src)
    return r.phase_durations()[1]


class TestIssueWidthAndDependences:
    def test_dependent_chain_runs_at_one_per_cycle(self):
        cycles = warm_phase_cycles(chain_src(200, dep=True))
        assert cycles >= 200          # 1 op/cycle minimum on the chain

    def test_independent_ops_exploit_width(self):
        dep = warm_phase_cycles(chain_src(200, dep=True))
        ind = warm_phase_cycles(chain_src(200, dep=False))
        assert ind < dep * 0.55

    def test_width_bounds_throughput(self):
        # 400 independent ops on a 4-wide machine need >= 100 cycles
        cycles = warm_phase_cycles(chain_src(400, dep=False))
        assert cycles >= 100

    def test_all_issued(self):
        r = time_asm(chain_src(50, dep=False) + "\nhalt")
        # 50 adds + 2 li (halt is not issued)
        assert r.scalar_units[0].issued == 52
        assert r.scalar_units[0].committed == 52


class TestMemory:
    def test_l1_hit_vs_miss(self):
        hit_src = """
        .f64 x 1.0
        li s1, &x
        fld f1, 0(s1)
        fld f2, 0(s1)
        fld f3, 0(s1)
        halt
        """
        r = time_asm(hit_src)
        su = r.scalar_units[0]
        assert su.l1d_accesses == 3
        assert su.l1d_misses == 1       # only the cold miss

    def test_load_use_latency_visible(self):
        src_chain = """
        .i64 x 5
        li s1, &x
        ld s2, 0(s1)
        add s3, s2, s2
        halt
        """
        src_nouse = """
        .i64 x 5
        li s1, &x
        ld s2, 0(s1)
        add s3, s1, s1
        halt
        """
        assert time_asm(src_chain).cycles >= time_asm(src_nouse).cycles

    def test_mem_port_limit(self):
        # 64 independent loads: 2 ports -> >= 32 cycles of port occupancy
        loads = "\n".join(f"ld s{2 + i % 8}, {(i % 4) * 8}(s1)"
                          for i in range(64))
        src = f".space x 64\nli s1, &x\n{loads}\nhalt"
        r = time_asm(src)
        assert r.cycles >= 32


class TestBranchPrediction:
    def test_loop_branch_learned(self):
        src = """
        li s1, 0
        li s2, 100
        loop:
        addi s1, s1, 1
        blt s1, s2, loop
        halt
        """
        r = time_asm(src)
        su = r.scalar_units[0]
        assert su.branch_lookups == 100
        # bimodal learns the backward branch quickly; only the exit and
        # warm-up mispredict
        assert su.branch_mispredicts <= 4

    def test_alternating_branch_hurts(self):
        src = """
        li s1, 0
        li s2, 100
        li s5, 1
        loop:
        andi s3, s1, 1
        beq s3, s0, even
        nop
        even:
        addi s1, s1, 1
        blt s1, s2, loop
        halt
        """
        r = time_asm(src)
        assert r.scalar_units[0].branch_mispredicts >= 40
        assert r.scalar_units[0].fetch_stall_cycles > 0


class TestSMT:
    def test_two_threads_share_one_su(self):
        src = """
        tid s1
        li s2, 0
        li s3, 300
        loop:
        addi s2, s2, 1
        blt s2, s3, loop
        barrier
        halt
        """
        from repro.timing.config import CONFIGS
        prog = assemble(src)
        one = simulate(prog, base_config(), num_threads=1)
        smt = simulate(prog, CONFIGS["V2-SMT"], num_threads=2)
        # two dependent-chain threads on one SMT SU overlap well: the
        # combined run is far below 2x a single thread, but not free
        assert smt.cycles < one.cycles * 1.8
        assert smt.cycles >= one.cycles * 0.9

    def test_two_sus_run_threads_independently(self):
        src = """
        li s2, 0
        li s3, 300
        loop:
        addi s2, s2, 1
        blt s2, s3, loop
        barrier
        halt
        """
        from repro.timing.config import CONFIGS
        prog = assemble(src)
        one = simulate(prog, base_config(), num_threads=1)
        cmp2 = simulate(prog, CONFIGS["V2-CMP"], num_threads=2)
        assert cmp2.cycles <= one.cycles * 1.3
