"""Machine-level behaviour: configs, placement, barriers, determinism."""

import pytest

from repro.isa import assemble
from repro.timing import simulate, trace_for
from repro.timing.config import (BASE, CMT, CONFIGS, V2_CMP, V2_SMT, V4_CMP,
                                 V4_CMP_H, V4_CMT, V4_SMT, VLT_SCALAR,
                                 base_config, get_config)
from repro.timing.machine import Machine, SimulationError


class TestConfigs:
    def test_registry_lookup(self):
        assert get_config("V4-CMT") is V4_CMT
        with pytest.raises(KeyError):
            get_config("bogus")

    def test_base_matches_table3(self):
        su = BASE.scalar_units[0]
        assert (su.width, su.window, su.arith_units, su.mem_ports) == \
            (4, 64, 4, 2)
        assert su.l1i_kib == su.l1d_kib == 16 and su.l1_assoc == 2
        vu = BASE.vu
        assert (vu.lanes, vu.issue_width, vu.viq_entries) == (8, 2, 32)
        assert (vu.arith_fus, vu.mem_ports) == (3, 2)
        l2 = BASE.l2
        assert (l2.size_kib, l2.assoc, l2.banks) == (4096, 4, 16)
        assert (l2.hit_latency, l2.miss_latency) == (10, 100)

    def test_halved_su(self):
        su2 = BASE.scalar_units[0].halved()
        assert (su2.width, su2.window, su2.arith_units, su2.mem_ports) == \
            (2, 32, 2, 1)
        assert su2.l1i_kib == 16  # identical caches (Section 6)

    def test_design_space_shapes(self):
        assert len(V2_CMP.scalar_units) == 2
        assert V2_SMT.scalar_units[0].smt_contexts == 2
        assert len(V4_CMP.scalar_units) == 4
        assert [su.width for su in V4_CMP_H.scalar_units] == [4, 2, 2, 2]
        assert all(su.smt_contexts == 2 for su in V4_CMT.scalar_units)
        assert CMT.vu is None
        assert VLT_SCALAR.lane_scalar_mode

    def test_placement_depth_first_within_su(self):
        assert V4_CMT.placement(4) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert V4_CMP_H.placement(4) == [(0, 0), (1, 0), (2, 0), (3, 0)]
        assert VLT_SCALAR.placement(8) == [(i, 0) for i in range(8)]

    def test_placement_overflow(self):
        with pytest.raises(ValueError):
            BASE.placement(2)
        with pytest.raises(ValueError):
            VLT_SCALAR.placement(9)

    def test_lane_partitions(self):
        assert BASE.lane_partitions(1) == [8]
        assert BASE.lane_partitions(2) == [4, 4]
        assert BASE.lane_partitions(4) == [2, 2, 2, 2]
        assert BASE.lane_partitions(8) == [1] * 8
        with pytest.raises(ValueError):
            BASE.lane_partitions(3)


LOOP = """
tid s1
muli s3, s1, 50
addi s3, s3, 50
li s2, 0
loop:
addi s2, s2, 1
blt s2, s3, loop
barrier
halt
"""


class TestExecution:
    def test_deterministic(self):
        prog = assemble(LOOP)
        a = simulate(prog, V2_CMP, num_threads=2).cycles
        from repro.timing import clear_trace_cache
        clear_trace_cache()
        b = simulate(prog, V2_CMP, num_threads=2).cycles
        assert a == b

    def test_barrier_waits_for_slowest(self):
        prog = assemble(LOOP)
        r = simulate(prog, V2_CMP, num_threads=2)
        # thread 1 runs a 2x longer loop; both finish together-ish
        assert r.barrier_count == 1
        assert abs(r.thread_finish[0] - r.thread_finish[1]) < 50

    def test_thread_finish_recorded(self):
        prog = assemble(LOOP)
        r = simulate(prog, V4_CMP, num_threads=4)
        assert len(r.thread_finish) == 4
        assert all(0 < t <= r.cycles for t in r.thread_finish)

    def test_trace_cache_reused_across_configs(self):
        prog = assemble(LOOP)
        t1 = trace_for(prog, 2)
        t2 = trace_for(prog, 2)
        assert t1 is t2

    def test_supplied_trace_thread_count_validated(self):
        prog = assemble(LOOP)
        t = trace_for(prog, 2)
        with pytest.raises(ValueError):
            simulate(prog, V4_CMP, num_threads=4, trace=t)

    def test_cycle_budget_enforced(self):
        prog = assemble(LOOP)
        with pytest.raises(SimulationError):
            simulate(prog, BASE, num_threads=1, max_cycles=10)

    def test_result_metadata(self):
        prog = assemble(".program myprog\n" + LOOP)
        r = simulate(prog, BASE, num_threads=1)
        assert r.config_name == "base"
        assert r.program_name == "myprog"
        assert r.num_threads == 1

    def test_summary_renders(self):
        prog = assemble(LOOP)
        r = simulate(prog, BASE, num_threads=1)
        text = r.summary()
        assert "cycles" in text and "base" in text


class TestLaneSweep:
    def test_more_lanes_never_slower_for_long_vectors(self):
        src = """
        .space x 1024
        li s10, 0
        li s11, 3
        rep:
        li s1, 64
        setvl s2, s1
        li s3, &x
        vld v1, 0(s3)
        vfadd.vv v2, v1, v1
        vfmul.vv v3, v2, v1
        vfadd.vv v4, v3, v2
        vst v4, 0(s3)
        addi s10, s10, 1
        blt s10, s11, rep
        halt
        """
        prog = assemble(src)
        cycles = [simulate(prog, base_config(lanes=n)).cycles
                  for n in (1, 2, 4, 8)]
        assert cycles == sorted(cycles, reverse=True)

    def test_vlt_partition_speedup_exists(self):
        # a short-vector SPMD kernel: 4 threads on V4-CMP beat 1 on base
        # short vectors with realistic per-iteration scalar overhead: the
        # base machine is scalar-unit-bound, which is exactly what VLT's
        # replicated SUs attack (Sections 3-4 of the paper)
        scalar_pad = "\n".join(f"add s{12 + i % 4}, s10, s11"
                               for i in range(10))
        src = f"""
        tid s1
        li s10, 0
        li s11, 300
        rep:
        li s2, 8
        setvl s3, s2
        {scalar_pad}
        vfadd.vv v1, v2, v3
        vfmul.vv v4, v1, v2
        vfadd.vv v5, v4, v1
        addi s10, s10, 1
        blt s10, s11, rep
        barrier
        halt
        """
        prog = assemble(src)
        base = simulate(prog, BASE, num_threads=1)
        vlt = simulate(prog, V4_CMP, num_threads=4)
        # 4 threads execute 4x the work in much less than 4x the time
        assert vlt.cycles < base.cycles * 2
