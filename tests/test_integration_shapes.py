"""End-to-end shape checks on (reduced) paper experiments.

These are the cheap versions of the benchmark-suite assertions: enough
simulation to confirm the headline claims hold, small enough for the
unit-test suite.
"""

import pytest

from repro.timing import simulate
from repro.timing.config import (BASE, CMT, V2_CMP, V4_CMP, VLT_SCALAR,
                                 base_config)
from repro.workloads import get_workload


class TestFigure1Shapes:
    def test_long_vectors_scale(self):
        w = get_workload("mxm")
        prog = w.program()
        c1 = simulate(prog, base_config(lanes=1)).cycles
        c8 = simulate(prog, base_config(lanes=8)).cycles
        assert c1 / c8 >= 4.0

    def test_short_vectors_saturate(self):
        w = get_workload("trfd")
        prog = w.program()
        c1 = simulate(prog, base_config(lanes=1)).cycles
        c8 = simulate(prog, base_config(lanes=8)).cycles
        assert 1.0 <= c1 / c8 <= 3.0

    def test_scalar_apps_flat(self):
        w = get_workload("barnes")
        prog = w.program()
        c1 = simulate(prog, base_config(lanes=1)).cycles
        c8 = simulate(prog, base_config(lanes=8)).cycles
        assert 0.95 <= c1 / c8 <= 1.2


class TestFigure3Shapes:
    @pytest.mark.parametrize("name", ["trfd", "multprec"])
    def test_vlt_speedup_in_band(self, name):
        w = get_workload(name)
        prog = w.program()
        base = simulate(prog, BASE, num_threads=1).cycles
        s2 = base / simulate(prog, V2_CMP, num_threads=2).cycles
        s4 = base / simulate(prog, V4_CMP, num_threads=4).cycles
        assert 1.05 <= s2 <= 2.4
        assert 1.2 <= s4 <= 3.2
        assert s4 >= s2 * 0.95


class TestFigure4Shapes:
    def test_vlt_compresses_execution(self):
        w = get_workload("trfd")
        prog = w.program()
        base = simulate(prog, BASE, num_threads=1)
        vlt = simulate(prog, V4_CMP, num_threads=4)
        # identical element work, fewer cycles
        assert vlt.utilization.busy == base.utilization.busy
        assert vlt.cycles < base.cycles
        # stall datapath-cycles shrink
        assert vlt.utilization.stalled < base.utilization.stalled


class TestFigure6Shapes:
    def test_ocean_lanes_beat_cmt(self):
        w = get_workload("ocean")
        prog = w.program(scalar_only=True)
        vlt = simulate(prog, VLT_SCALAR, num_threads=8).cycles
        cmt = simulate(prog, CMT, num_threads=4).cycles
        assert cmt / vlt >= 1.25

    def test_barnes_parity(self):
        w = get_workload("barnes")
        prog = w.program(scalar_only=True)
        vlt = simulate(prog, VLT_SCALAR, num_threads=8).cycles
        cmt = simulate(prog, CMT, num_threads=4).cycles
        assert 0.7 <= cmt / vlt <= 1.5
