"""RunResult/utilization stats and functional trace records."""

import numpy as np
import pytest

from repro.functional.trace import DynOp, ProgramTrace, ThreadTrace
from repro.isa import spec
from repro.timing.stats import DatapathUtilization, RunResult


class TestDatapathUtilization:
    def test_total_and_fractions(self):
        u = DatapathUtilization(busy=10, partly_idle=5, stalled=25,
                                all_idle=60)
        assert u.total == 100
        f = u.fractions()
        assert f["busy"] == pytest.approx(0.10)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_empty_fractions_explicit(self):
        # an empty run has no denominator: the honest answer is "no
        # fractions", not a row of zeros that sums to 0 instead of 1
        assert DatapathUtilization().fractions() == {}

    def test_nonempty_fractions_sum_to_one(self):
        u = DatapathUtilization(busy=1)
        f = u.fractions()
        assert sum(f.values()) == pytest.approx(1.0)
        assert set(f) == {"busy", "partly_idle", "stalled", "all_idle"}

    def test_merged(self):
        a = DatapathUtilization(busy=1, partly_idle=2, stalled=3, all_idle=4)
        b = DatapathUtilization(busy=10, partly_idle=20, stalled=30,
                                all_idle=40)
        m = a.merged(b)
        assert (m.busy, m.partly_idle, m.stalled, m.all_idle) == \
            (11, 22, 33, 44)

    def test_merged_empty_is_identity(self):
        a = DatapathUtilization(busy=1, partly_idle=2, stalled=3, all_idle=4)
        empty = DatapathUtilization()
        assert a.merged(empty) == a
        assert empty.merged(a) == a
        assert empty.merged(empty).total == 0
        assert empty.merged(empty).fractions() == {}


class TestRunResultPhases:
    def _rr(self, cycles, releases):
        return RunResult(config_name="c", program_name="p", num_threads=1,
                         cycles=cycles, phase_release_cycles=releases)

    def test_no_barriers_single_phase(self):
        assert self._rr(100, []).phase_durations() == [100]

    def test_phases_partition_cycles(self):
        durs = self._rr(100, [30, 70]).phase_durations()
        assert durs == [30, 40, 30]
        assert sum(durs) == 100

    def test_trailing_barrier(self):
        assert self._rr(50, [50]).phase_durations() == [50, 0]


def _dyn(op, **kw):
    s = spec(op)
    return DynOp(0, op, s, (), (), **kw)


class TestThreadTrace:
    def test_counts(self):
        t = ThreadTrace(0)
        t.append(_dyn("add"))
        t.append(_dyn("vadd.vv", vl=8))
        t.append(_dyn("vfmul.vs", vl=16))
        c = t.counts()
        assert c == {"total": 3, "scalar": 1, "vector": 2,
                     "element_ops": 24}

    def test_vector_lengths(self):
        t = ThreadTrace(0)
        t.append(_dyn("vadd.vv", vl=5))
        t.append(_dyn("add"))
        t.append(_dyn("vadd.vv", vl=7))
        assert t.vector_lengths().tolist() == [5, 7]

    def test_len(self):
        t = ThreadTrace(0)
        assert len(t) == 0
        t.append(_dyn("nop"))
        assert len(t) == 1


class TestProgramTrace:
    def test_merged_counts(self):
        p = ProgramTrace("prog", 2, [ThreadTrace(0), ThreadTrace(1)])
        p.threads[0].append(_dyn("add"))
        p.threads[1].append(_dyn("vadd.vv", vl=4))
        assert p.total_ops() == 2
        m = p.merged_counts()
        assert m["scalar"] == 1 and m["vector"] == 1
        assert m["element_ops"] == 4
