"""Cache tag-array model: hits, misses, LRU, geometry."""

import pytest

from repro.timing.caches import Cache


class TestGeometry:
    def test_sets_computed(self):
        c = Cache(16 * 1024, 2, 64)
        assert c.num_sets == 128

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(1000, 3, 64)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = Cache(1024, 2, 64)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(8) is True          # same line

    def test_distinct_lines(self):
        c = Cache(1024, 2, 64)
        c.access(0)
        assert c.access(64) is False

    def test_lru_eviction(self):
        # 2-way, 64B lines, 1024B cache -> 8 sets; same set every 512B
        c = Cache(1024, 2, 64)
        a, b, d = 0, 512, 1024
        c.access(a)
        c.access(b)
        c.access(d)                 # evicts a (LRU)
        assert c.access(a) is False
        # now b was evicted by a's refill
        assert c.access(d) is True

    def test_lru_update_on_hit(self):
        c = Cache(1024, 2, 64)
        a, b, d = 0, 512, 1024
        c.access(a)
        c.access(b)
        c.access(a)                 # a becomes MRU
        c.access(d)                 # evicts b, not a
        assert c.access(a) is True
        assert c.access(b) is False

    def test_probe_does_not_disturb(self):
        c = Cache(1024, 2, 64)
        c.access(0)
        before = c.stats.accesses
        assert c.probe(0) is True
        assert c.probe(64) is False
        assert c.stats.accesses == before

    def test_flush(self):
        c = Cache(1024, 2, 64)
        c.access(0)
        c.flush()
        assert c.access(0) is False

    def test_stats(self):
        c = Cache(1024, 2, 64)
        c.access(0)
        c.access(0)
        c.access(64)
        assert c.stats.accesses == 3
        assert c.stats.misses == 2
        assert c.stats.hits == 1
        assert c.stats.miss_rate == pytest.approx(2 / 3)

    def test_fully_utilized_no_thrash_within_capacity(self):
        c = Cache(4096, 4, 64)
        lines = list(range(0, 4096, 64))
        for a in lines:
            c.access(a)
        assert all(c.access(a) for a in lines)
