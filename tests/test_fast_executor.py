"""Fast functional engine: bit-identity against the reference executor.

The fast engine (:mod:`repro.functional.fast`) pre-compiles basic
blocks into specialized handlers and emits trace columns directly.  Its
contract is exact equivalence: identical serialized trace bytes,
identical final architectural state (registers, memory), and identical
error behaviour, across the full figure-3/5/6 run matrix.  The
``func-diff`` CI job runs this module plus CLI differential checks.
"""

import numpy as np
import pytest

from repro.functional import (ExecutionError, Executor, FUNC_ENGINES,
                              FastExecutor, run_program_fast,
                              trace_from_bytes, trace_to_bytes,
                              validate_func_engine)
from repro.harness import experiments as E
from repro.isa import ProgramBuilder, S, V, assemble
from repro.isa.registers import MVL
from repro.timing.config import BASE
from repro.timing.run import clear_trace_cache, simulate, trace_for
from repro.verify import differential_check
from repro.workloads import get_workload

_I64_MAX = 0x7FFFFFFFFFFFFFFF
_I64_MIN = -0x8000000000000000


def _run_both(prog, threads=1):
    ref = Executor(prog, num_threads=threads)
    ref_trace = ref.run()
    fast = FastExecutor(prog, num_threads=threads)
    fast_trace = fast.run()
    return ref, ref_trace, fast, fast_trace


def _assert_identical(ref, ref_trace, fast, fast_trace):
    assert trace_to_bytes(fast_trace) == trace_to_bytes(ref_trace)
    assert bytes(fast.mem.u8) == bytes(ref.mem.u8)
    for sr, sf in zip(ref.states, fast.states):
        assert sr.s == sf.s
        assert sr.f == sf.f
        assert np.array_equal(sr.v_i, sf.v_i)
        assert np.array_equal(
            sr.v_f.view(np.int64), sf.v_f.view(np.int64))
        assert np.array_equal(sr.vm, sf.vm)
        assert sr.vl == sf.vl
        assert sr.pc == sf.pc


# --------------------------------------------------------------------------
# Engine selection plumbing
# --------------------------------------------------------------------------

class TestEngineSelection:
    def test_engines_tuple(self):
        assert FUNC_ENGINES == ("reference", "fast")

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown functional engine"):
            validate_func_engine("turbo")
        for engine in FUNC_ENGINES:
            assert validate_func_engine(engine) == engine

    def test_trace_for_rejects_unknown(self):
        prog = get_workload("mpenc").program()
        with pytest.raises(ValueError, match="unknown functional engine"):
            trace_for(prog, 1, func_engine="turbo")

    def test_runner_rejects_unknown(self):
        from repro.harness.runner import ExperimentRunner
        with pytest.raises(ValueError, match="unknown functional engine"):
            ExperimentRunner(func_engine="turbo")

    def test_simulate_accepts_fast(self):
        prog = get_workload("mpenc").program()
        clear_trace_cache()
        r_ref = simulate(prog, BASE)
        clear_trace_cache()
        r_fast = simulate(prog, BASE, func_engine="fast")
        assert r_ref == r_fast

    def test_differential_check_fast(self):
        prog = get_workload("mpenc").program()
        report = differential_check(prog, BASE, func_engine="fast")
        assert report.ok, report.render()


# --------------------------------------------------------------------------
# Full-matrix bit-identity (the tentpole's acceptance bar)
# --------------------------------------------------------------------------

def _matrix_combos():
    seen = set()
    combos = []
    for spec in E.matrix_for(["fig3", "fig5", "fig6"]):
        key = (spec.app, spec.threads, spec.scalar_only)
        if key not in seen:
            seen.add(key)
            combos.append(key)
    return combos


class TestMatrixBitIdentity:
    @pytest.mark.parametrize("app,threads,scalar_only", _matrix_combos())
    def test_trace_and_state_identical(self, app, threads, scalar_only):
        prog = get_workload(app).program(scalar_only=scalar_only)
        ref, ref_trace, fast, fast_trace = _run_both(prog, threads)
        _assert_identical(ref, ref_trace, fast, fast_trace)

    def test_second_run_hits_expansion_cache(self):
        """A rerun of the same program reuses the decoded program and
        its cross-run expansion cache -- and must stay bit-identical."""
        prog = get_workload("mpenc").program()
        ref_trace = Executor(prog, num_threads=2).run()
        first = FastExecutor(prog, num_threads=2)
        assert trace_to_bytes(first.run()) == trace_to_bytes(ref_trace)
        second = FastExecutor(prog, num_threads=2)
        assert second._dp is first._dp   # shared decode
        assert trace_to_bytes(second.run()) == trace_to_bytes(ref_trace)

    def test_trace_round_trips(self):
        prog = get_workload("trfd").program()
        trace = FastExecutor(prog, num_threads=2).run()
        again = trace_from_bytes(trace_to_bytes(trace))
        assert trace_to_bytes(again) == trace_to_bytes(trace)
        assert again.total_ops() == trace.total_ops()

    def test_run_program_fast_helper(self):
        prog = get_workload("mpenc").program()
        trace, ex = run_program_fast(prog, num_threads=1)
        ref = Executor(prog, num_threads=1)
        ref_trace = ref.run()
        assert trace_to_bytes(trace) == trace_to_bytes(ref_trace)
        assert bytes(ex.mem.u8) == bytes(ref.mem.u8)


# --------------------------------------------------------------------------
# Control-flow shapes the block compiler specializes
# --------------------------------------------------------------------------

class TestControlFlowParity:
    def test_computed_jump(self):
        src = """
        .space out 64
        li s2, &out
        jal s10, target
        li s3, 1
        st s3, 0(s2)
        halt
        target:
        li s3, 42
        st s3, 8(s2)
        jr s10
        """
        prog = assemble(src)
        _assert_identical(*_run_both(prog))

    def test_tid_divergent_branches(self):
        src = """
        .space out 256
        tid s1
        slli s2, s1, 3
        li s3, &out
        add s3, s3, s2
        andi s4, s1, 1
        bne s4, s0, odd
        li s5, 100
        st s5, 0(s3)
        j done
        odd:
        li s5, 200
        st s5, 0(s3)
        done:
        barrier
        halt
        """
        prog = assemble(src)
        _assert_identical(*_run_both(prog, threads=4))

    def test_tight_self_loop_rep_block(self):
        """A self-looping block takes the rep-specialized path; the
        expanded trace must match the reference op for op."""
        src = """
        .space out 64
        li s1, 0
        li s2, 10000
        loop:
        addi s1, s1, 1
        blt s1, s2, loop
        li s3, &out
        st s1, 0(s3)
        halt
        """
        prog = assemble(src)
        ref, ref_trace, fast, fast_trace = _run_both(prog)
        _assert_identical(ref, ref_trace, fast, fast_trace)
        assert ref.states[0].s[1] == 10000

    def test_vltcfg_and_masked_loop(self):
        src = """
        .space x 2048
        li s5, 0
        li s6, 6
        vltcfg 2
        rep:
        li s1, 64
        setvl s2, s1
        li s3, &x
        vld v1, 0(s3)
        vslt.vs v1, s5
        vadd.vs.m v2, v1, s6
        vst v2, 0(s3)
        addi s5, s5, 1
        blt s5, s6, rep
        halt
        """
        prog = assemble(src)
        _assert_identical(*_run_both(prog, threads=2))


# --------------------------------------------------------------------------
# Error parity
# --------------------------------------------------------------------------

class TestErrorParity:
    def _both_raise(self, prog, match, threads=1):
        with pytest.raises(ExecutionError, match=match):
            Executor(prog, num_threads=threads, max_ops=50_000).run()
        with pytest.raises(ExecutionError, match=match):
            FastExecutor(prog, num_threads=threads, max_ops=50_000).run()

    def test_runaway_self_loop(self):
        b = ProgramBuilder("spin", memory_kib=64)
        b.label("loop")
        b.op("addi", S(1), S(1), 1)
        b.op("blt", S(0), S(1), "loop")
        b.op("halt")
        self._both_raise(b.build(), "dynamic instructions")

    def test_runaway_multi_block_loop(self):
        src = """
        top:
        addi s1, s1, 1
        j top
        halt
        """
        self._both_raise(assemble(src), "dynamic instructions")

    def test_invalid_jump_target(self):
        b = ProgramBuilder("bad", memory_kib=64)
        b.op("li", S(1), 9999)
        b.op("jr", S(1))
        b.op("halt")
        self._both_raise(b.build(), "invalid pc")

    def test_barrier_deadlock(self):
        src = """
        tid s1
        bne s1, s0, skip
        barrier
        skip:
        halt
        """
        self._both_raise(assemble(src), "deadlock|barrier", threads=2)

    def test_memory_fault_parity(self):
        b = ProgramBuilder("oob", memory_kib=64)
        b.op("li", S(1), 1 << 40)
        b.op("ld", S(2), (0, S(1)))
        b.op("halt")
        prog = b.build()
        with pytest.raises(Exception) as ref_exc:
            Executor(prog).run()
        with pytest.raises(Exception) as fast_exc:
            FastExecutor(prog).run()
        assert type(fast_exc.value) is type(ref_exc.value)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_vector_fault_parity(self):
        src = """
        .space x 512
        li s1, 64
        setvl s2, s1
        li s3, &x
        addi s3, s3, 4
        vld v1, 0(s3)
        halt
        """
        prog = assemble(src)
        with pytest.raises(Exception) as ref_exc:
            Executor(prog).run()
        with pytest.raises(Exception) as fast_exc:
            FastExecutor(prog).run()
        assert type(fast_exc.value) is type(ref_exc.value)
        assert str(fast_exc.value) == str(ref_exc.value)


# --------------------------------------------------------------------------
# Semantic corners (reference semantics, asserted on both engines)
# --------------------------------------------------------------------------

def _executor_for(engine):
    return FastExecutor if engine == "fast" else Executor


@pytest.mark.parametrize("engine", FUNC_ENGINES)
class TestSemanticCorners:
    def _run(self, engine, setup, n=8, xi=None):
        rng = np.random.default_rng(7)
        if xi is None:
            xi = rng.integers(-1000, 1000, size=n, dtype=np.int64)
        b = ProgramBuilder("corner", memory_kib=64)
        b.data_i64("x", xi)
        b.space("out", max(n, MVL) * 8)
        b.op("li", S(1), n)
        b.op("setvl", S(2), S(1))
        b.la(S(3), "x")
        b.la(S(7), "out")
        b.op("vld", V(1), (0, S(3)))
        setup(b)
        b.op("halt")
        prog = b.build()
        ex = _executor_for(engine)(prog, num_threads=1)
        ex.run()
        return ex, prog, xi

    def test_scalar_shift_amount_masked_low6(self, engine):
        b = ProgramBuilder("shift", memory_kib=64)
        b.op("li", S(1), 1)
        b.op("li", S(2), 67)            # 67 & 63 == 3
        b.op("sll", S(3), S(1), S(2))
        b.op("li", S(4), -8)
        b.op("sra", S(5), S(4), S(2))
        b.op("srl", S(6), S(4), S(2))
        b.op("halt")
        ex = _executor_for(engine)(b.build())
        ex.run()
        st = ex.states[0]
        assert st.s[3] == 1 << 3
        assert st.s[5] == -1
        assert st.s[6] == ((-8) & 0xFFFFFFFFFFFFFFFF) >> 3

    def test_vector_shift_amount_masked_low6(self, engine):
        xi = np.arange(1, 9, dtype=np.int64)
        def body(b):
            b.op("li", S(4), 65)        # 65 & 63 == 1
            b.op("vsll.vs", V(2), V(1), S(4))
            b.op("vst", V(2), (0, S(7)))
        ex, prog, xi = self._run(engine, body, xi=xi)
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        assert np.array_equal(got, xi << 1)

    def test_scalar_div_rem_by_zero(self, engine):
        b = ProgramBuilder("divz", memory_kib=64)
        b.op("li", S(1), 37)
        b.op("div", S(2), S(1), S(0))
        b.op("rem", S(3), S(1), S(0))
        b.op("li", S(4), -37)
        b.op("div", S(5), S(4), S(0))
        b.op("halt")
        ex = _executor_for(engine)(b.build())
        ex.run()
        st = ex.states[0]
        assert st.s[2] == 0 and st.s[3] == 0 and st.s[5] == 0

    def test_vector_div_rem_by_zero(self, engine):
        xi = np.array([7, -7, 0, 5, -5, 9, -9, 1], dtype=np.int64)
        def body(b):
            b.op("vdiv.vs", V(2), V(1), S(0))
            b.op("vrem.vs", V(3), V(1), S(0))
            b.op("vadd.vv", V(4), V(2), V(3))
            b.op("vst", V(4), (0, S(7)))
        ex, prog, _ = self._run(engine, body, xi=xi)
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        assert np.array_equal(got, np.zeros(8, dtype=np.int64))

    def test_scalar_wraparound(self, engine):
        b = ProgramBuilder("wrap", memory_kib=64)
        b.op("li", S(1), _I64_MAX)
        b.op("addi", S(2), S(1), 1)     # wraps to I64_MIN
        b.op("mul", S(3), S(1), S(1))   # wraps, stays in 64 bits
        b.op("halt")
        ex = _executor_for(engine)(b.build())
        ex.run()
        st = ex.states[0]
        assert st.s[2] == _I64_MIN
        assert st.s[3] == ((_I64_MAX * _I64_MAX + (1 << 63))
                           % (1 << 64)) - (1 << 63)

    def test_vector_wraparound(self, engine):
        xi = np.full(8, _I64_MAX, dtype=np.int64)
        def body(b):
            b.op("li", S(4), 1)
            b.op("vadd.vs", V(2), V(1), S(4))
            b.op("vst", V(2), (0, S(7)))
        ex, prog, _ = self._run(engine, body, xi=xi)
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        assert np.array_equal(got, np.full(8, _I64_MIN, dtype=np.int64))

    def test_masked_lanes_not_written(self, engine):
        xi = np.array([-4, 3, -2, 1, -8, 5, -6, 7], dtype=np.int64)
        def body(b):
            b.op("li", S(4), 1000)
            b.op("vadd.vs", V(2), V(1), S(4))   # prefill dst
            b.op("vslt.vs", V(1), S(0))         # mask = x < 0
            b.op("li", S(5), 0)
            b.op("vmul.vs", V(2), V(1), S(5), masked=True)
            b.op("vst", V(2), (0, S(7)))
        ex, prog, _ = self._run(engine, body, xi=xi)
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        want = np.where(xi < 0, 0, xi + 1000)
        assert np.array_equal(got, want)

    def test_masked_store_leaves_memory(self, engine):
        xi = np.array([-4, 3, -2, 1, -8, 5, -6, 7], dtype=np.int64)
        def body(b):
            b.op("li", S(4), 111)
            b.op("vadd.vs", V(2), V(1), S(4))
            b.op("vst", V(2), (0, S(7)))        # baseline out = x + 111
            b.op("vslt.vs", V(1), S(0))         # mask = x < 0
            b.op("vst", V(1), (0, S(7)), masked=True)
        ex, prog, _ = self._run(engine, body, xi=xi)
        got = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        want = np.where(xi < 0, xi, xi + 111)
        assert np.array_equal(got, want)
