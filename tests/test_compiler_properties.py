"""Property-based compiler tests: compiled kernels == NumPy evaluation.

Random elementwise expression trees over a few arrays are compiled with
every (policy, vectorize, threads) combination and executed; the result
must match direct NumPy evaluation of the same tree.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (Array, Assign, Bin, CompileOptions, Const,
                            Kernel, LoadExpr, Loop, Var, compile_kernel)
from repro.functional import Executor

_OPS = ["+", "-", "*", "min", "max"]


@st.composite
def expr_tree(draw, arrays, var, depth=0):
    """A random expression tree; returns (Expr, numpy evaluator)."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            arr, data = draw(st.sampled_from(arrays))
            return LoadExpr(arr[var]), (lambda env, d=data: d)
        val = draw(st.floats(min_value=-4, max_value=4,
                             allow_nan=False).map(lambda x: round(x, 3)))
        return Const(val), (lambda env, v=val: np.full(env, v))
    op = draw(st.sampled_from(_OPS))
    a, fa = draw(expr_tree(arrays, var, depth + 1))
    b, fb = draw(expr_tree(arrays, var, depth + 1))

    def ev(env, op=op, fa=fa, fb=fb):
        x, y = fa(env), fb(env)
        if op == "+":
            return x + y
        if op == "-":
            return x - y
        if op == "*":
            return x * y
        if op == "min":
            return np.minimum(x, y)
        return np.maximum(x, y)

    return Bin(op, a, b), ev


@st.composite
def random_kernel(draw):
    n = draw(st.integers(min_value=1, max_value=130))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 16)))
    arrays = []
    for name in ("a", "b"):
        data = np.round(rng.standard_normal(n), 4)
        arrays.append((Array(name, (n,), data), data))
    i = Var("i")
    e, ev = draw(expr_tree(arrays, i))
    z = Array("z", (n,))
    kern = Kernel("rand", [Loop(i, n, [Assign(z[i], e)], parallel=True)])
    return kern, ev, n


class TestCompiledEqualsNumpy:
    @settings(max_examples=30, deadline=None)
    @given(data=random_kernel(),
           vectorize=st.booleans(),
           policy=st.sampled_from(["maxvl", "unitstride", "innermost"]))
    def test_single_thread(self, data, vectorize, policy):
        kern, ev, n = data
        prog = compile_kernel(
            kern, CompileOptions(vectorize=vectorize, policy=policy))
        ex = Executor(prog)
        ex.run()
        got = ex.mem.read_f64_array(prog.symbol_addr("z"), n)
        want = ev(n)
        assert np.allclose(got, want, rtol=1e-12, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(data=random_kernel(),
           nt=st.sampled_from([2, 4, 8]))
    def test_threaded(self, data, nt):
        kern, ev, n = data
        prog = compile_kernel(kern, CompileOptions(threads=True))
        ex = Executor(prog, num_threads=nt)
        ex.run()
        got = ex.mem.read_f64_array(prog.symbol_addr("z"), n)
        assert np.allclose(got, ev(n), rtol=1e-12, atol=1e-12)
