"""Workload self-checks and Table 4 characteristic bands."""

import numpy as np
import pytest

from repro.workloads import (PAPER_TABLE4, all_workload_names, characterize,
                             get_workload)
from repro.workloads.base import VerificationError


class TestRegistry:
    def test_all_nine_registered(self):
        assert all_workload_names() == [
            "mxm", "sage", "mpenc", "trfd", "multprec", "bt",
            "radix", "ocean", "barnes"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_singleton_instances(self):
        assert get_workload("mxm") is get_workload("mxm")

    def test_program_cached(self):
        w = get_workload("trfd")
        assert w.program() is w.program()


class TestVerification:
    @pytest.mark.parametrize("name", all_workload_names())
    def test_single_thread_correct(self, name):
        get_workload(name).run_and_verify(num_threads=1)

    @pytest.mark.parametrize("name", all_workload_names())
    def test_max_threads_correct(self, name):
        w = get_workload(name)
        w.run_and_verify(num_threads=w.thread_counts[-1])

    @pytest.mark.parametrize("name", ["mpenc", "trfd", "multprec", "bt"])
    def test_vlt_thread_counts(self, name):
        w = get_workload(name)
        for nt in w.thread_counts:
            w.run_and_verify(num_threads=nt)

    @pytest.mark.parametrize("name", ["radix", "ocean", "barnes"])
    def test_scalar_flavour_correct(self, name):
        w = get_workload(name)
        w.run_and_verify(num_threads=8, scalar_only=True)
        w.run_and_verify(num_threads=4, scalar_only=True)

    @pytest.mark.parametrize("name", ["radix", "ocean", "barnes"])
    def test_scalar_flavour_has_no_vector_code(self, name):
        w = get_workload(name)
        prog = w.program(scalar_only=True)
        assert not any(i.spec.is_vector for i in prog.instrs)

    @pytest.mark.parametrize("name", ["mxm", "sage", "trfd"])
    def test_vector_apps_reject_scalar_flavour(self, name):
        with pytest.raises(ValueError):
            get_workload(name).build(scalar_only=True)


class TestTable4Bands:
    """Measured characteristics must land near the paper's Table 4."""

    @pytest.mark.parametrize("name,lo,hi", [
        ("mxm", 85, 100), ("sage", 88, 100), ("mpenc", 66, 86),
        ("trfd", 63, 90), ("multprec", 60, 80), ("bt", 38, 58),
        ("radix", 2, 16),
    ])
    def test_pct_vect(self, name, lo, hi):
        c = characterize(name, measure_opportunity=False)
        assert lo <= c.pct_vect <= hi

    @pytest.mark.parametrize("name", ["ocean", "barnes"])
    def test_scalar_apps_have_no_vector(self, name):
        c = characterize(name, measure_opportunity=False)
        assert c.pct_vect == 0

    @pytest.mark.parametrize("name,lo,hi", [
        ("mxm", 63, 64), ("sage", 63, 64), ("mpenc", 8, 14),
        ("trfd", 18, 28), ("multprec", 22, 28), ("bt", 5.5, 8.5),
        ("radix", 55, 64),
    ])
    def test_avg_vl(self, name, lo, hi):
        c = characterize(name, measure_opportunity=False)
        assert lo <= c.avg_vl <= hi

    @pytest.mark.parametrize("name,expected_subset", [
        ("mpenc", {8, 16, 64}),
        ("trfd", {20, 30, 35}),
        ("multprec", {23, 24, 64}),
        ("bt", {5, 10, 12}),
        ("radix", {24, 52, 64}),
    ])
    def test_common_vls(self, name, expected_subset):
        c = characterize(name, measure_opportunity=False)
        assert expected_subset <= set(c.common_vls)

    @pytest.mark.parametrize("name,lo", [
        ("mpenc", 65), ("trfd", 90), ("multprec", 70), ("bt", 55),
        ("radix", 80), ("ocean", 80), ("barnes", 90),
    ])
    def test_opportunity(self, name, lo):
        c = characterize(name)
        assert c.pct_opportunity is not None
        assert c.pct_opportunity >= lo

    def test_long_vector_apps_skip_opportunity(self):
        c = characterize("mxm")
        assert c.pct_opportunity is None

    def test_row_rendering(self):
        c = characterize("bt", measure_opportunity=False)
        row = c.row()
        assert row[0] == "bt"
        assert all(isinstance(x, str) for x in row)


class TestPhaseMask:
    def test_default_all_parallel(self):
        w = get_workload("mxm")
        assert w.phase_parallel_mask(3) == [True] * 3

    def test_declared_mask_padded_by_repetition(self):
        w = get_workload("ocean")
        m = w.phase_parallel_mask(20)
        assert len(m) == 20
        assert not all(m)
