"""Assembler robustness and engine-differential fuzzing.

Two layers:

* arbitrary input never crashes the assembler unexpectedly -- every
  input either assembles to a valid program or raises
  :class:`AssemblerError` / :class:`ValueError` with line context;
* random *valid* programs (masked vector ops, ``vltcfg``,
  tid-divergent branches, bounded loops) must execute bit-identically
  on the fast block-compiled engine and the reference interpreter --
  identical trace bytes, memory, and register state, or the same
  :class:`ExecutionError`.
"""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import (ExecutionError, Executor, FastExecutor,
                              trace_to_bytes)
from repro.isa import AssemblerError, assemble
from repro.isa.opcodes import OPCODES

_TEXT = st.text(alphabet=string.printable, max_size=200)


class TestFuzz:
    @settings(max_examples=150, deadline=None)
    @given(src=_TEXT)
    def test_random_text_fails_cleanly_or_assembles(self, src):
        try:
            prog = assemble(src + "\nhalt")
        except (AssemblerError, ValueError):
            return
        assert prog.finalized

    @settings(max_examples=100, deadline=None)
    @given(
        mnemonic=st.sampled_from(sorted(OPCODES)),
        operands=st.lists(
            st.sampled_from(["s1", "f2", "v3", "7", "1.5", "0(s2)", "vm",
                             "label", "&x", "s99", "zzz"]),
            max_size=4),
    )
    def test_random_operand_combinations(self, mnemonic, operands):
        src = ".space x 64\nlabel:\n" + mnemonic + " " + \
            ", ".join(operands) + "\nhalt"
        try:
            prog = assemble(src)
        except (AssemblerError, ValueError):
            return
        assert len(prog.instrs) >= 1

    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(
        st.sampled_from([
            "li s1, 5", "add s2, s1, s1", "fli f1, 2.0",
            "fadd f2, f1, f1", "nop", "setvl s3, s1",
            "vadd.vv v1, v2, v3", "lbl:", "beq s0, s0, lbl",
        ]), min_size=1, max_size=25))
    def test_valid_fragments_always_assemble(self, lines):
        # forward/duplicate labels may legitimately fail; anything else
        # must assemble
        src = "\n".join(lines) + "\nhalt"
        try:
            prog = assemble(src)
        except AssemblerError as exc:
            assert "label" in str(exc) or "lbl" in str(exc)
            return
        except ValueError as exc:
            assert "lbl" in str(exc) or "label" in str(exc)
            return
        assert prog.instrs[-1].spec.is_halt


# --------------------------------------------------------------------------
# Fast-vs-reference differential fuzz
# --------------------------------------------------------------------------

#: self-contained fragments; ``{i}`` is a unique suffix for labels,
#: ``{r}`` a small random immediate.  Only forward branches and one
#: bounded backward loop, so every composition terminates.
_DIFF_FRAGMENTS = [
    "li s1, {r}",
    "addi s2, s2, {r}",
    "mul s3, s2, s1",
    "div s4, s3, s1",
    "rem s5, s3, s2",
    "sll s6, s1, s2",
    "srl s6, s3, s2",
    "sra s6, s3, s1",
    "tid s7\nbne s7, s0, skip{i}\naddi s2, s2, 7\nskip{i}:",
    "tid s7\nslli s8, s7, 3\nli s9, &out\nadd s9, s9, s8\nst s2, 0(s9)",
    "li s7, {vl}\nsetvl s8, s7\nli s9, &x\nvld v1, 0(s9)",
    "vslt.vs v1, s0\nvadd.vs.m v2, v1, s1",
    "li s9, &x\nvmul.vs v3, v2, s2\nvst v3, 0(s9)",
    "vsll.vs v2, v2, s2\nvsra.vs v3, v3, s1",
    "vdiv.vs v4, v2, s2\nvrem.vs v5, v2, s2",
    "vltcfg 2",
    "barrier",
    "li s10, 0\nloop{i}:\naddi s10, s10, 1\nblt s10, s11, loop{i}",
]

_DIFF_PROLOGUE = """.space x 2048
.space out 2048
li s11, 5
li s1, 3
li s2, 2
"""


def _diff_program(picks):
    lines = [_DIFF_PROLOGUE]
    for i, (frag, r) in enumerate(picks):
        lines.append(_DIFF_FRAGMENTS[frag].format(i=i, r=r,
                                                  vl=8 + 8 * (r % 8)))
    lines.append("halt")
    return assemble("\n".join(lines), name="fuzz")


class TestEngineDifferentialFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        picks=st.lists(
            st.tuples(st.integers(0, len(_DIFF_FRAGMENTS) - 1),
                      st.integers(0, 31)),
            min_size=1, max_size=20),
        threads=st.sampled_from([1, 2, 4]),
    )
    def test_fast_matches_reference(self, picks, threads):
        prog = _diff_program(picks)
        ref = Executor(prog, num_threads=threads, max_ops=200_000)
        try:
            ref_trace = ref.run()
        except ExecutionError:
            with pytest.raises(ExecutionError):
                FastExecutor(prog, num_threads=threads,
                             max_ops=200_000).run()
            return
        fast = FastExecutor(prog, num_threads=threads, max_ops=200_000)
        fast_trace = fast.run()
        assert trace_to_bytes(fast_trace) == trace_to_bytes(ref_trace)
        assert bytes(fast.mem.u8) == bytes(ref.mem.u8)
        for sr, sf in zip(ref.states, fast.states):
            assert sr.s == sf.s
            assert sr.f == sf.f
            assert np.array_equal(sr.v_i, sf.v_i)
            assert np.array_equal(sr.vm, sf.vm)
            assert sr.vl == sf.vl
