"""Assembler robustness: arbitrary input never crashes unexpectedly.

Every input either assembles to a valid program or raises
:class:`AssemblerError` / :class:`ValueError` with line context -- never
an uncontrolled exception type.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import AssemblerError, assemble
from repro.isa.opcodes import OPCODES

_TEXT = st.text(alphabet=string.printable, max_size=200)


class TestFuzz:
    @settings(max_examples=150, deadline=None)
    @given(src=_TEXT)
    def test_random_text_fails_cleanly_or_assembles(self, src):
        try:
            prog = assemble(src + "\nhalt")
        except (AssemblerError, ValueError):
            return
        assert prog.finalized

    @settings(max_examples=100, deadline=None)
    @given(
        mnemonic=st.sampled_from(sorted(OPCODES)),
        operands=st.lists(
            st.sampled_from(["s1", "f2", "v3", "7", "1.5", "0(s2)", "vm",
                             "label", "&x", "s99", "zzz"]),
            max_size=4),
    )
    def test_random_operand_combinations(self, mnemonic, operands):
        src = ".space x 64\nlabel:\n" + mnemonic + " " + \
            ", ".join(operands) + "\nhalt"
        try:
            prog = assemble(src)
        except (AssemblerError, ValueError):
            return
        assert len(prog.instrs) >= 1

    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(
        st.sampled_from([
            "li s1, 5", "add s2, s1, s1", "fli f1, 2.0",
            "fadd f2, f1, f1", "nop", "setvl s3, s1",
            "vadd.vv v1, v2, v3", "lbl:", "beq s0, s0, lbl",
        ]), min_size=1, max_size=25))
    def test_valid_fragments_always_assemble(self, lines):
        # forward/duplicate labels may legitimately fail; anything else
        # must assemble
        src = "\n".join(lines) + "\nhalt"
        try:
            prog = assemble(src)
        except AssemblerError as exc:
            assert "label" in str(exc) or "lbl" in str(exc)
            return
        except ValueError as exc:
            assert "lbl" in str(exc) or "label" in str(exc)
            return
        assert prog.instrs[-1].spec.is_halt
