"""The headline harness guarantee: ``--jobs 4`` == ``--jobs 1``.

Runs the *full* experiment matrix (every run behind Figures 1/3/4/5/6,
all nine workloads) through the runner serially and with four worker
processes, and asserts cycle-for-cycle and byte-for-byte agreement of
the generated EXPERIMENTS.md.  This is the slowest test in the suite
(it executes the sweep twice); it is the acceptance test for the
parallel runner, not a unit test.
"""

from repro.harness import experiments as E
from repro.harness.docgen import generate_experiments_md
from repro.harness.runner import ExperimentRunner
from repro.timing.run import set_trace_cache_dir

_FIGS = ["fig1", "fig3", "fig4", "fig5", "fig6"]


def test_jobs4_matches_jobs1_full_matrix(tmp_path):
    specs = E.matrix_for(_FIGS)
    assert {s.app for s in specs} == set(E.ALL_APPS)

    serial = ExperimentRunner(jobs=1, cache_dir=tmp_path / "serial")
    out1 = serial.run(specs)
    parallel = ExperimentRunner(jobs=4, cache_dir=tmp_path / "parallel")
    out4 = parallel.run(specs)
    set_trace_cache_dir(None)

    assert not serial.failures and not parallel.failures
    cycles1 = {s: o.result.cycles for s, o in out1.items()}
    cycles4 = {s: o.result.cycles for s, o in out4.items()}
    assert cycles1 == cycles4

    doc1 = generate_experiments_md(runs=serial.results)
    doc4 = generate_experiments_md(runs=parallel.results)
    assert doc1 == doc4   # byte-identical documents
    for app in E.ALL_APPS:
        assert app in doc4
