"""Control flow, threads, barriers, and executor error handling."""

import numpy as np
import pytest

from repro.functional import ExecutionError, Executor
from repro.isa import ProgramBuilder, S, assemble
from tests.conftest import run_asm


class TestBranches:
    def test_loop_counts(self):
        src = """
        .space out 8
        li s1, 0
        li s2, 10
        loop:
        addi s1, s1, 1
        blt s1, s2, loop
        li s3, &out
        st s1, 0(s3)
        halt
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == 10

    def test_branch_taken_recorded_in_trace(self):
        src = """
        li s1, 1
        beq s1, s0, skip
        li s2, 2
        skip:
        halt
        """
        trace, _, _ = run_asm(src)
        branches = [o for o in trace.threads[0].ops if o.spec.is_branch]
        assert branches[0].taken is False

    def test_jal_jr_roundtrip(self):
        src = """
        .space out 8
        jal s10, func
        li s2, &out
        st s1, 0(s2)
        halt
        func:
        li s1, 42
        jr s10
        """
        _, ex, prog = run_asm(src)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == 42

    def test_invalid_jump_target(self):
        b = ProgramBuilder("bad", memory_kib=64)
        b.op("li", S(1), 9999)
        b.op("jr", S(1))
        b.op("halt")
        prog = b.build()
        with pytest.raises(ExecutionError, match="invalid pc"):
            Executor(prog).run()


class TestThreads:
    SRC = """
    .space out 64
    tid s1
    ntid s2
    slli s3, s1, 3
    li s4, &out
    add s4, s4, s3
    st s2, 0(s4)
    barrier
    halt
    """

    @pytest.mark.parametrize("nt", [1, 2, 4, 8])
    def test_tid_ntid(self, nt):
        _, ex, prog = run_asm(self.SRC, num_threads=nt)
        out = ex.mem.read_i64_array(prog.symbol_addr("out"), 8)
        assert out[:nt].tolist() == [nt] * nt
        assert out[nt:].tolist() == [0] * (8 - nt)

    def test_barrier_orders_phases(self):
        # thread 1 reads what thread 0 wrote before the barrier
        src = """
        .space a 8
        .space out 8
        tid s1
        bne s1, s0, wait
        li s2, 123
        li s3, &a
        st s2, 0(s3)
        wait:
        barrier
        li s4, 1
        bne s1, s4, done
        li s5, &a
        ld s6, 0(s5)
        li s7, &out
        st s6, 0(s7)
        done:
        halt
        """
        _, ex, prog = run_asm(src, num_threads=2)
        assert ex.mem.load_i64(prog.symbol_addr("out")) == 123

    def test_barrier_deadlock_detected(self):
        # thread 0 skips the barrier that thread 1 waits at
        src = """
        tid s1
        bne s1, s0, dowait
        halt
        dowait:
        barrier
        halt
        """
        prog = assemble(src)
        with pytest.raises(ExecutionError, match="deadlock"):
            Executor(prog, num_threads=2).run()

    def test_runaway_guard(self):
        src = """
        loop:
        j loop
        halt
        """
        prog = assemble(src)
        with pytest.raises(ExecutionError, match="dynamic instructions"):
            Executor(prog, max_ops=1000).run()

    def test_num_threads_validated(self):
        prog = assemble("halt")
        with pytest.raises(ValueError):
            Executor(prog, num_threads=0)

    def test_unfinalized_program_rejected(self):
        from repro.isa.program import Program
        with pytest.raises(ValueError):
            Executor(Program())


class TestTraceRecording:
    def test_vltcfg_in_trace(self):
        trace, _, _ = run_asm("vltcfg 4\nhalt")
        ops = trace.threads[0].ops
        assert ops[0].spec.is_vltcfg and ops[0].imm == 4

    def test_record_trace_off(self):
        prog = assemble("li s1, 5\nhalt")
        ex = Executor(prog, record_trace=False)
        trace = ex.run()
        assert trace.total_ops() == 0

    def test_counts(self):
        src = """
        li s1, 4
        setvl s2, s1
        vadd.vv v1, v2, v3
        halt
        """
        trace, _, _ = run_asm(src)
        c = trace.merged_counts()
        assert c["vector"] == 1
        assert c["element_ops"] == 4
        assert c["total"] == 4

    def test_vector_lengths(self):
        src = """
        li s1, 4
        setvl s2, s1
        vadd.vv v1, v2, v3
        li s1, 7
        setvl s2, s1
        vadd.vv v1, v2, v3
        halt
        """
        trace, _, _ = run_asm(src)
        assert trace.threads[0].vector_lengths().tolist() == [4, 7]
