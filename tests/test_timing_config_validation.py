"""Configuration validation: malformed machines fail at construction,
not mid-simulation (failure injection for the config layer)."""

from dataclasses import replace

import pytest

from repro.timing.config import (BASE, L2Config, ScalarUnitConfig,
                                 VectorUnitConfig)


class TestScalarUnitValidation:
    @pytest.mark.parametrize("kw", [
        {"width": 0}, {"window": 0}, {"arith_units": 0},
        {"mem_ports": 0}, {"smt_contexts": 0}, {"bpred_entries": 100},
    ])
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            ScalarUnitConfig(**kw)

    def test_accepts_defaults(self):
        ScalarUnitConfig()


class TestVectorUnitValidation:
    @pytest.mark.parametrize("kw", [
        {"lanes": 0}, {"issue_width": 0}, {"viq_entries": 0},
        {"arith_fus": 0}, {"mem_ports": 0}, {"phys_vregs": 32},
    ])
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            VectorUnitConfig(**kw)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            replace(BASE.vu, lanes=0)


class TestL2Validation:
    @pytest.mark.parametrize("kw", [
        {"banks": 0}, {"bank_busy": 0}, {"line": 48}, {"line": 4},
        {"size_kib": 1, "assoc": 3, "line": 64},
        {"hit_latency": 10, "miss_latency": 5},
    ])
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            L2Config(**kw)

    def test_accepts_defaults(self):
        L2Config()
