"""Bimodal branch predictor unit tests."""

import pytest

from repro.timing.branch import BimodalPredictor


class TestBimodal:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)

    def test_learns_constant_direction(self):
        p = BimodalPredictor(16)
        results = [p.predict_and_update(4, True) for _ in range(20)]
        # initialised weakly-taken: correct from the start for taken
        assert all(results)
        p2 = BimodalPredictor(16)
        results = [p2.predict_and_update(4, False) for _ in range(20)]
        # at most two warm-up mispredicts for the not-taken stream
        assert sum(not r for r in results) <= 2
        assert all(results[4:])

    def test_hysteresis_tolerates_single_flip(self):
        p = BimodalPredictor(16)
        for _ in range(10):
            p.predict_and_update(0, True)
        p.predict_and_update(0, False)      # one anomaly
        assert p.predict_and_update(0, True)  # still predicts taken

    def test_alternating_pattern_is_hard(self):
        p = BimodalPredictor(16)
        outcomes = [bool(i % 2) for i in range(100)]
        wrong = sum(not p.predict_and_update(8, t) for t in outcomes)
        assert wrong >= 40

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(16)
        for _ in range(10):
            p.predict_and_update(1, True)
            p.predict_and_update(2, False)
        assert p.predict_and_update(1, True)
        assert p.predict_and_update(2, False)

    def test_aliasing_wraps_table(self):
        p = BimodalPredictor(16)
        for _ in range(10):
            p.predict_and_update(0, False)
        # pc 16 aliases pc 0 in a 16-entry table
        assert p.predict_and_update(16, False)

    def test_accuracy_stat(self):
        p = BimodalPredictor(16)
        for _ in range(100):
            p.predict_and_update(3, True)
        assert p.accuracy > 0.95
        assert p.lookups == 100
