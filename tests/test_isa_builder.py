"""ProgramBuilder: data allocation, emission, labels, validation."""

import numpy as np
import pytest

from repro.isa import F, ProgramBuilder, S, V, make_instr
from repro.isa.builder import DATA_ALIGN
from repro.isa.program import Program
from repro.isa.registers import VL, VM


class TestDataAllocation:
    def test_alignment(self, builder):
        a = builder.data_f64("a", 3)       # 24 bytes
        b = builder.data_i64("b", [1, 2])  # 16 bytes
        assert a.addr % DATA_ALIGN == 0
        assert b.addr % DATA_ALIGN == 0
        assert b.addr >= a.addr + a.nbytes

    def test_address_zero_reserved(self, builder):
        a = builder.data_f64("a", 1)
        assert a.addr >= DATA_ALIGN

    def test_initializers_land_in_memory(self, builder):
        vals = np.array([1.5, -2.5, 3.25])
        builder.data_f64("x", vals)
        builder.op("halt")
        prog = builder.build()
        mem = prog.build_memory()
        got = mem.view(np.float64)[prog.symbol_addr("x") // 8:][:3]
        assert np.array_equal(got, vals)

    def test_int_initializers(self, builder):
        builder.data_i64("n", [7, -9])
        builder.op("halt")
        prog = builder.build()
        mem = prog.build_memory()
        got = mem.view(np.int64)[prog.symbol_addr("n") // 8:][:2]
        assert got.tolist() == [7, -9]

    def test_duplicate_symbol_rejected(self, builder):
        builder.data_f64("a", 1)
        with pytest.raises(ValueError):
            builder.data_f64("a", 1)

    def test_overflow_rejected(self):
        b = ProgramBuilder("t", memory_kib=1)
        with pytest.raises(MemoryError):
            b.space("big", 1 << 20)


class TestEmission:
    def test_attribute_emission_maps_underscores(self, builder):
        ins = builder.vfadd_vv(V(1), V(2), V(3))
        assert ins.op == "vfadd.vv"

    def test_masked_kwarg(self, builder):
        ins = builder.op("vadd.vv", V(1), V(2), V(3), masked=True)
        assert ins.masked
        assert VM in ins.reads()

    def test_masked_suffix_in_name(self):
        ins = make_instr("vadd.vv.m", [V(1), V(2), V(3)])
        assert ins.masked and ins.op == "vadd.vv"

    def test_mask_on_unmaskable_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.op("add", S(1), S(2), S(3), masked=True)

    def test_operand_count_checked(self):
        with pytest.raises(TypeError):
            make_instr("add", [S(1), S(2)])

    def test_operand_class_checked(self):
        with pytest.raises(TypeError):
            make_instr("add", [S(1), S(2), F(3)])
        with pytest.raises(TypeError):
            make_instr("fadd", [F(1), F(2), V(3)])

    def test_mem_operand_forms(self):
        ins = make_instr("ld", [S(1), (16, S(2))])
        assert ins.mem == (16, S(2))
        ins2 = make_instr("ld", [S(1), S(2)])  # bare register = offset 0
        assert ins2.mem == (0, S(2))

    def test_strided_memory_operand_routing(self):
        ins = make_instr("vlds", [V(1), (0, S(2)), S(3)])
        assert ins.stride == S(3)
        assert ins.srcs == ()

    def test_indexed_memory_operand_routing(self):
        ins = make_instr("vldx", [V(1), (0, S(2)), V(3)])
        assert ins.vidx == V(3)

    def test_store_source_first(self):
        ins = make_instr("vst", [V(4), (0, S(1))])
        assert ins.srcs == (V(4),)
        assert ins.dst is None

    def test_compare_has_implicit_mask_dst(self):
        ins = make_instr("vslt.vv", [V(1), V(2)])
        assert ins.dst == VM

    def test_unknown_attr_raises(self, builder):
        with pytest.raises(AttributeError):
            builder.not_an_opcode(S(1))


class TestReadsWrites:
    def test_vector_reads_include_vl(self):
        ins = make_instr("vadd.vv", [V(1), V(2), V(3)])
        assert VL in ins.reads()
        assert V(2) in ins.reads() and V(3) in ins.reads()
        assert ins.writes() == (V(1),)

    def test_setvl_writes_vl(self):
        ins = make_instr("setvl", [S(1), S(2)])
        assert VL in ins.writes()

    def test_compare_writes_mask(self):
        ins = make_instr("vfeq.vv", [V(1), V(2)])
        assert VM in ins.writes()

    def test_vins_reads_destination(self):
        ins = make_instr("vins", [V(3), S(1), S(2)])
        assert V(3) in ins.reads()

    def test_mem_base_is_read(self):
        ins = make_instr("fld", [F(1), (8, S(4))])
        assert S(4) in ins.reads()


class TestLabelsAndBuild:
    def test_labels_resolved(self, builder):
        builder.op("li", S(1), 0)
        builder.label("top")
        builder.op("addi", S(1), S(1), 1)
        builder.op("blt", S(1), S(2), "top")
        builder.op("halt")
        prog = builder.build()
        assert prog.instrs[2].target == 1

    def test_undefined_label_rejected(self, builder):
        builder.op("j", "nowhere")
        builder.op("halt")
        with pytest.raises(ValueError, match="nowhere"):
            builder.build()

    def test_duplicate_label_rejected(self, builder):
        builder.label("a")
        with pytest.raises(ValueError):
            builder.label("a")

    def test_program_without_halt_rejected(self, builder):
        builder.op("nop")
        with pytest.raises(ValueError, match="halt"):
            builder.build()

    def test_genlabel_unique(self, builder):
        assert builder.genlabel("x") != builder.genlabel("x")

    def test_listing_roundtrip_through_assembler(self, builder):
        from repro.isa import assemble
        builder.data_f64("x", [1.0])
        builder.la(S(1), "x")
        builder.op("fld", F(1), (0, S(1)))
        builder.op("fadd", F(2), F(1), F(1))
        builder.op("halt")
        prog = builder.build()
        listing = prog.listing()
        # a listing without data directives still parses instruction-wise
        reparsed = assemble(".space x 64\n" + listing.replace(
            str(prog.symbol_addr("x")), "&x"))
        assert len(reparsed.instrs) == len(prog.instrs)
