"""Pipeline-event viewer."""

import pytest

from repro.isa import assemble
from repro.timing.config import BASE, V2_CMP, VLT_SCALAR
from repro.timing.pipeview import PipeView, simulate_with_pipeview

SRC = """
li s1, 8
setvl s2, s1
li s3, 5
add s4, s3, s3
vfadd.vv v1, v2, v3
vfmul.vv v4, v1, v2
halt
"""


class TestPipeView:
    def test_collects_scalar_and_vector_events(self):
        prog = assemble(SRC)
        view, result = simulate_with_pipeview(prog, BASE)
        kinds = {e.kind for e in view.events}
        assert kinds == {"issue", "vissue"}
        scalar = [e for e in view.events if e.kind == "issue"]
        vector = [e for e in view.events if e.kind == "vissue"]
        assert len(scalar) == 4   # li/setvl/li/add (halt never issues)
        assert len(vector) == 2
        assert all(e.vl == 8 for e in vector)
        assert result.cycles > 0

    def test_events_are_chronological(self):
        prog = assemble(SRC)
        view, _ = simulate_with_pipeview(prog, BASE)
        cycles = [e.cycle for e in view.events]
        assert cycles == sorted(cycles)

    def test_truncation(self):
        prog = assemble(SRC)
        view, _ = simulate_with_pipeview(prog, BASE, max_events=3)
        assert view.truncated
        assert len(view.events) == 3

    def test_start_cycle_filter(self):
        prog = assemble(SRC)
        full, _ = simulate_with_pipeview(prog, BASE)
        later, _ = simulate_with_pipeview(
            prog, BASE, start_cycle=full.events[-1].cycle)
        assert len(later.events) < len(full.events)

    def test_listing_and_strip_render(self):
        prog = assemble(SRC)
        view, _ = simulate_with_pipeview(prog, BASE)
        text = view.listing()
        assert "vfadd.vv vl=8" in text
        strip = view.strip(width=32)
        assert "SU0.c0" in strip and "VU.p0" in strip
        assert "#" in strip

    def test_units_on_multithreaded_machine(self):
        prog = assemble("""
        tid s1
        add s2, s1, s1
        barrier
        halt
        """)
        view, _ = simulate_with_pipeview(prog, V2_CMP, num_threads=2)
        assert {"SU0.c0", "SU1.c0"} <= set(view.units())

    def test_lane_core_events(self):
        prog = assemble("""
        li s1, 3
        add s2, s1, s1
        halt
        """)
        view, _ = simulate_with_pipeview(prog, VLT_SCALAR)
        assert any(e.unit == "lane0" for e in view.events)

    def test_issue_histogram(self):
        prog = assemble(SRC)
        view, _ = simulate_with_pipeview(prog, BASE)
        hist = view.issues_per_cycle()
        assert sum(hist.values()) == len(view.events)

    def test_empty_view(self):
        assert PipeView().strip() == "(no events)"
