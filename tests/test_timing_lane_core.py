"""Lane-core (scalar threads on lanes) timing model."""

import pytest

from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import CMT, VLT_SCALAR


def run_lanes(src, threads=1, cfg=VLT_SCALAR):
    prog = assemble(src)
    return simulate(prog, cfg, num_threads=threads)


class TestBasics:
    def test_single_thread_completes(self):
        r = run_lanes("""
        li s1, 0
        li s2, 50
        loop:
        addi s1, s1, 1
        blt s1, s2, loop
        halt
        """)
        assert r.cycles > 50
        assert r.lane_cores[0].issued > 100

    def test_eight_threads_one_per_lane(self):
        src = """
        tid s1
        li s2, 0
        li s3, 100
        loop:
        addi s2, s2, 1
        blt s2, s3, loop
        barrier
        halt
        """
        r = run_lanes(src, threads=8)
        assert sum(1 for lc in r.lane_cores if lc.issued > 0) == 8

    def test_vector_op_rejected(self):
        src = """
        li s1, 8
        setvl s2, s1
        vadd.vv v1, v2, v3
        halt
        """
        with pytest.raises(RuntimeError, match="scalar lane-core"):
            run_lanes(src)

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            run_lanes("halt", threads=9)


class TestInOrderBehaviour:
    def test_two_wide_issue_bound(self):
        body = "\n".join("add s3, s1, s2" if i % 2 else "add s4, s1, s2"
                         for i in range(100))
        r = run_lanes(f"li s1, 1\nli s2, 2\n{body}\nhalt")
        # 100 independent adds on a 2-wide in-order core: >= 50 cycles
        assert r.cycles >= 50

    def test_load_use_stall_recorded(self):
        src = """
        .i64 x 5
        li s1, &x
        ld s2, 0(s1)
        add s3, s2, s2
        halt
        """
        r = run_lanes(src)
        assert r.lane_cores[0].load_stall_cycles > 0

    def test_loads_have_l2_latency(self):
        # dependent pointer-chase: each load waits ~hit latency
        chase = "\n".join("ld s2, 0(s2)" for _ in range(20))
        src = f"""
        .i64 p 64
        li s2, &p
        st s2, 0(s2)
        {chase}
        halt
        """
        r = run_lanes(src)
        assert r.cycles >= 20 * 10      # 10-cycle L2 hits, serialised


class TestDecoupledSlip:
    def _warm(self, body, data=""):
        from tests.conftest import warm_cycles
        return warm_cycles(body, cfg=VLT_SCALAR, data=data)

    def test_independent_loads_pipeline(self):
        # interleaved: load feeds an FP chain; later loads slip ahead
        body = ["li s1, &x"]
        for i in range(16):
            body.append(f"fld f{1 + i % 8}, {i * 8}(s1)")
            body.append(f"fadd f9, f9, f{1 + i % 8}")
        warm = self._warm("\n".join(body), data=".space x 256")
        # without slip each fadd waits ~10 cycles: >= 160 (+ barrier 30).
        # with slip the loads run ahead and the chain costs ~3 each.
        assert warm < 150

    def test_slip_respects_true_dependence(self):
        # the second load's address depends on the first load's result;
        # it must NOT slip ahead of it
        body = """
        li s1, &p
        ld s2, 0(s1)
        ld s3, 0(s2)
        add s4, s3, s3
        """
        warm = self._warm(body, data=".i64 p 64\n.i64 q 123")
        # two serialised L2 hits (barrier overhead cancels between
        # consecutive phases)
        assert warm >= 20

    def test_slip_address_arithmetic_runs_ahead(self):
        # pointer increments between loads do not serialise the stream
        # (the compiler also rotates the load destinations, so no WAR)
        body = ["li s1, &x"]
        for i in range(16):
            body.append(f"fld f{1 + i % 8}, 0(s1)")
            body.append(f"fadd f9, f9, f{1 + i % 8}")
            body.append("addi s1, s1, 8")
        warm = self._warm("\n".join(body), data=".space x 256")
        assert warm < 16 * 10

    def test_war_register_reuse_blocks_slip(self):
        # with a single rotating register the next load's destination is
        # still read by the stalled consumer: slip must hold it back and
        # the loads serialise at the L2 latency
        body = ["li s1, &x"]
        for i in range(16):
            body.append("fld f1, 0(s1)")
            body.append("fadd f9, f9, f1")
            body.append("addi s1, s1, 8")
        warm = self._warm("\n".join(body), data=".space x 256")
        assert warm >= 16 * 10


class TestICache:
    def test_small_loop_hits_icache(self):
        src = """
        li s1, 0
        li s2, 500
        loop:
        addi s1, s1, 1
        blt s1, s2, loop
        halt
        """
        r = run_lanes(src)
        lc = r.lane_cores[0]
        assert lc.icache_misses <= 2


class TestAgainstCMT:
    def test_barrier_synchronises_lane_threads(self):
        src = """
        tid s1
        li s2, 0
        muli s3, s1, 40
        addi s3, s3, 10
        loop:
        addi s2, s2, 1
        blt s2, s3, loop
        barrier
        halt
        """
        r = run_lanes(src, threads=8)
        # all finish at/after the slowest thread's barrier
        assert max(r.thread_finish) - min(r.thread_finish) < 100
        assert r.barrier_count == 1

    def test_cmt_runs_scalar_threads_on_sus(self):
        src = """
        li s2, 0
        li s3, 200
        loop:
        addi s2, s2, 1
        blt s2, s3, loop
        barrier
        halt
        """
        r = run_lanes(src, threads=4, cfg=CMT)
        assert not r.lane_cores
        assert sum(su.issued for su in r.scalar_units) > 800
