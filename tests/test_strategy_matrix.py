"""Every compiled workload x every strategy: lint + differential clean.

The tentpole guarantee of the strategy layer: whatever shape a strategy
gives a workload's code, the program still passes the static verifier,
still computes the right answer (the workload's own NumPy self-check),
and the timing machine still replays the functional trace exactly.
"""

import pytest

from repro.compiler import STRATEGY_NAMES
from repro.timing.config import BASE, V2_CMP
from repro.verify import lint
from repro.verify.diff import differential_check
from repro.workloads import compiled_workload_names, get_workload

APPS = compiled_workload_names()


def test_compiled_workload_names():
    assert APPS == ["mxm", "sage", "trfd"]


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("app", APPS)
class TestStrategyMatrix:
    def test_lint_clean(self, app, strategy):
        prog = get_workload(app).program(strategy=strategy)
        assert lint(prog) == []

    def test_functional_self_check(self, app, strategy):
        get_workload(app).run_and_verify(num_threads=2,
                                         strategy=strategy)

    def test_differential_clean(self, app, strategy):
        # base (1 thread) plus a threaded machine point, so the
        # runtime-split peel epilogues on threaded chunks are exercised
        prog = get_workload(app).program(strategy=strategy)
        for cfg, threads in ((BASE, 1), (V2_CMP, 2)):
            report = differential_check(prog, cfg, num_threads=threads)
            assert report.ok, report.render()


def test_fallback_aliasing_table():
    """Pin which strategies genuinely transform which workloads.

    Padding falls back everywhere (mxm/sage trip counts are already
    MVL multiples; trfd's loops are triangular, reductions, or
    outer-indexed).  Unroll-and-jam only fires on mxm's perfect
    (i, k, j) nest.  Peeling reshapes sage (runtime-split threaded
    chunks) and trfd (short loops scalarized), but is the identity on
    mxm's full-MVL strips.  A change here means the legality analyses
    moved -- update docs/compiler.md's catalogue to match.
    """
    digest = {(a, s): get_workload(a).program(strategy=s).digest()
              for a in APPS for s in STRATEGY_NAMES}
    distinct = {(a, s) for a in APPS for s in STRATEGY_NAMES[1:]
                if digest[(a, s)] != digest[(a, "auto")]}
    assert distinct == {("mxm", "unroll_jam"),
                        ("sage", "peeling"),
                        ("trfd", "peeling")}


class TestTradeoffDriver:
    def test_sweep_report_and_bench_payload(self):
        from repro.harness.tradeoff import (bench_payload,
                                            compiler_tradeoff,
                                            render_tradeoff)
        res = compiler_tradeoff(apps=["mxm"])
        assert res.apps == ("mxm",)
        assert res.strategies == tuple(STRATEGY_NAMES)
        # deterministic cycles: aliased strategies cost exactly auto
        assert res.cell("mxm", "padding").cycles \
            == res.cell("mxm", "auto").cycles
        assert res.cell("mxm", "padding").aliases == "auto"
        # unroll_jam genuinely transforms mxm and must not lose ops
        jam = res.cell("mxm", "unroll_jam")
        assert jam.aliases is None
        assert jam.vector_ops == res.cell("mxm", "auto").vector_ops
        report = render_tradeoff(res)
        assert "unroll_jam" in report and "fell back" in report
        payload = bench_payload(res)
        assert payload["benchmark"] == "compiler_tradeoff"
        row = payload["results"]["strategy_unroll_jam"]
        assert row["speedup_vs_auto"] > 0
        assert payload["results"]["mxm@auto"]["speedup_vs_auto"] == 1.0

    def test_rejects_non_compiled_apps(self):
        from repro.harness.tradeoff import compiler_tradeoff
        with pytest.raises(ValueError, match="not compiled"):
            compiler_tradeoff(apps=["radix"])

    def test_matrix_specs_carry_strategy(self):
        from repro.harness.tradeoff import tradeoff_matrix
        specs = tradeoff_matrix(apps=["mxm", "trfd"])
        assert len(specs) == 2 * len(STRATEGY_NAMES)
        assert {s.strategy for s in specs} == set(STRATEGY_NAMES)
        assert all(s.config == "base" and s.threads == 1 for s in specs)


def test_strategy_cache_aliases_programs():
    """program() canonicalises and caches: a fallen-back strategy
    returns the *same object* as auto once both were requested."""
    w = get_workload("mxm")
    assert w.program(strategy="padding") is not None
    # padding falls back on mxm -> identical digest, distinct cache
    # slots, but the build is deterministic either way
    assert (w.program(strategy="padding").digest()
            == w.program(strategy="auto").digest())
    # unknown strategies are rejected before touching the cache
    from repro.compiler import VectorizationError
    with pytest.raises(VectorizationError):
        w.program(strategy="sideways")
