"""SPMD helper emitters in repro.workloads.common."""

import numpy as np
import pytest

from repro.functional import Executor
from repro.isa import F, ProgramBuilder, S
from repro.workloads.common import (R_NTID, R_TID, counted_loop, emit_chunk,
                                    emit_parallel_reduce_f64,
                                    parallel_barrier, serial_section,
                                    spmd_prologue)


class TestEmitChunk:
    @pytest.mark.parametrize("n,nt", [(100, 1), (100, 2), (100, 4),
                                      (100, 8), (7, 8), (8, 8), (0, 4)])
    def test_chunks_partition_range(self, n, nt):
        b = ProgramBuilder("chunk", memory_kib=64)
        out = b.data_i64("out", 16)
        spmd_prologue(b)
        lo, hi, t0 = S(1), S(2), S(3)
        emit_chunk(b, n, lo, hi, t0)
        a = S(4)
        b.op("slli", a, R_TID, 4)
        b.op("addi", a, a, out.addr)
        b.op("st", lo, (0, a))
        b.op("st", hi, (8, a))
        b.op("barrier")
        b.op("halt")
        prog = b.build()
        ex = Executor(prog, num_threads=nt)
        ex.run()
        vals = ex.mem.read_i64_array(out.addr, 2 * nt).reshape(nt, 2)
        covered = []
        for t in range(nt):
            lo_v, hi_v = int(vals[t, 0]), int(vals[t, 1])
            assert 0 <= lo_v <= hi_v <= n
            covered.extend(range(lo_v, hi_v))
        assert sorted(covered) == list(range(n))  # exact partition


class TestParallelReduce:
    @pytest.mark.parametrize("nt", [1, 2, 4, 8])
    def test_sums_one_value_per_thread(self, nt):
        b = ProgramBuilder("reduce", memory_kib=64)
        b.data_f64("parts", 8)
        b.data_f64("out", 1)
        spmd_prologue(b)
        val = F(1)
        # thread t contributes t + 0.5
        b.op("itof", val, R_TID)
        b.op("fli", F(2), 0.5)
        b.op("fadd", val, val, F(2))
        emit_parallel_reduce_f64(b, val, "parts", "out",
                                 S(1), F(3), F(4))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog, num_threads=nt)
        ex.run()
        got = ex.mem.read_f64_array(prog.symbol_addr("out"), 1)[0]
        assert got == pytest.approx(sum(t + 0.5 for t in range(nt)))


class TestSerialSection:
    def test_runs_once(self):
        b = ProgramBuilder("ser", memory_kib=64)
        out = b.data_i64("out", 1)
        spmd_prologue(b)
        with serial_section(b):
            a = S(1)
            b.op("li", a, out.addr)
            v = S(2)
            b.op("ld", v, (0, a))
            b.op("addi", v, v, 1)
            b.op("st", v, (0, a))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog, num_threads=8)
        ex.run()
        assert ex.mem.load_i64(out.addr) == 1


class TestCountedLoop:
    def test_zero_trip(self):
        b = ProgramBuilder("z", memory_kib=64)
        out = b.data_i64("out", 1)
        bound = S(1)
        b.op("li", bound, 0)
        i = S(2)
        with counted_loop(b, i, bound):
            a = S(3)
            b.op("li", a, out.addr)
            b.op("st", bound, (0, a))  # would write 0 over 0 anyway
            b.op("li", S(4), 1)
            b.op("st", S(4), (0, a))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        assert ex.mem.load_i64(out.addr) == 0

    def test_register_start(self):
        b = ProgramBuilder("rs", memory_kib=64)
        out = b.data_i64("out", 1)
        lo, hi = S(1), S(2)
        b.op("li", lo, 3)
        b.op("li", hi, 9)
        acc = S(3)
        b.op("li", acc, 0)
        i = S(4)
        with counted_loop(b, i, hi, start=lo):
            b.op("add", acc, acc, i)
        a = S(5)
        b.op("li", a, out.addr)
        b.op("st", acc, (0, a))
        b.op("halt")
        prog = b.build()
        ex = Executor(prog)
        ex.run()
        assert ex.mem.load_i64(out.addr) == sum(range(3, 9))
