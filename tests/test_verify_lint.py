"""Static linter: rule firing on the bad-program corpus, cleanliness of
every shipped program, and the automatic compiler/workload gates."""

from pathlib import Path

import pytest

from repro.isa.assembler import assemble
from repro.verify import (ERROR, LintError, RULES, WARNING, check,
                          emit_findings, lint, severity_of)

BAD_DIR = Path(__file__).parent / "data" / "bad_programs"
BAD_PROGRAMS = sorted(p.stem for p in BAD_DIR.glob("*.s"))


class TestBadProgramCorpus:
    def test_corpus_covers_every_rule(self):
        # one minimal failing example per rule, named after the rule id
        assert set(BAD_PROGRAMS) == set(RULES)

    @pytest.mark.parametrize("name", BAD_PROGRAMS)
    def test_flags_expected_rule(self, name):
        prog = assemble((BAD_DIR / f"{name}.s").read_text(), name=name)
        findings = lint(prog)
        rules = {f.rule for f in findings}
        assert name in rules, f"{name}: fired {sorted(rules)}"
        # the corpus examples are *minimal*: nothing else fires
        assert rules == {name}, f"{name}: extra rules {sorted(rules - {name})}"
        for f in findings:
            assert f.severity == severity_of(f.rule)
            assert f.pc >= 0

    @pytest.mark.parametrize("name", BAD_PROGRAMS)
    def test_check_raises_iff_error_severity(self, name):
        prog = assemble((BAD_DIR / f"{name}.s").read_text(), name=name)
        if severity_of(name) == ERROR:
            with pytest.raises(LintError) as exc:
                check(prog)
            assert name in str(exc.value)
        else:
            assert severity_of(name) == WARNING
            findings = check(prog)   # warnings never raise
            assert {f.rule for f in findings} == {name}


class TestShippedProgramsAreClean:
    def test_all_workload_flavours_lint_clean(self):
        from repro.workloads import all_workload_names, get_workload
        for name in all_workload_names():
            w = get_workload(name)
            for so in (False, True):
                try:
                    prog = w.build(scalar_only=so)
                except ValueError:
                    continue   # no scalar flavour for long-vector apps
                assert lint(prog) == [], f"{name} scalar_only={so}"

    def test_compiler_gate_is_on_by_default(self):
        # compile_kernel(..., verify=True) is the default; a clean build
        # of a real kernel must pass through check() without raising
        from repro.compiler import (Array, Assign, CompileOptions, Kernel,
                                    Loop, Var, compile_kernel)
        i = Var("i")
        a = Array("a", (64,))
        kern = Kernel("touch", [Loop(i, 64, [Assign(a[i], a[i] + 1.0)],
                                     parallel=True)])
        prog = compile_kernel(kern, CompileOptions())
        assert prog.finalized


class TestLintMechanics:
    def test_requires_finalized_program(self):
        from repro.isa.program import Program
        prog = Program(name="unfinalized", instrs=[], labels={}, symbols={},
                       initializers=[], memory_bytes=1024)
        with pytest.raises(ValueError, match="finalized"):
            lint(prog)

    def test_vltcfg_zero_is_legal(self):
        # vltcfg 0 = "repartition for the current thread count" idiom
        prog = assemble(".program z\n vltcfg 0\n halt\n")
        assert lint(prog) == []

    def test_s0_reads_are_always_defined(self):
        prog = assemble(".program s0\n add s1, s0, s0\n halt\n")
        assert lint(prog) == []

    def test_defined_on_one_path_only_still_flagged(self):
        prog = assemble("""
        .program onepath
            li s1, 1
            beq s1, s0, skip
            li s2, 7
        skip:
            add s3, s2, s1
            halt
        """)
        rules = {f.rule for f in lint(prog)}
        assert rules == {"use-before-def"}

    def test_masked_memory_op_is_exempt_from_range_rules(self):
        # a masked store only touches active elements; the linter is
        # precise-or-silent, so no mem-oob without knowing the mask
        prog = assemble("""
        .program maskedst
        .memory 1
        .f64 x 1.0 2.0
            li s1, 8
            setvl s2, s1
            li s3, &x
            vld v1, 0(s3)
            vfle.vv v1, v1
            li s4, 100000
            vst.m v1, 0(s4)
            halt
        """)
        assert "mem-oob" not in {f.rule for f in lint(prog)}

    def test_findings_sorted_and_rendered(self):
        prog = assemble(".program two\n add s1, s2, s3\n halt\n")
        findings = lint(prog)
        assert findings == sorted(findings, key=lambda f: (f.pc, f.rule))
        text = findings[0].render("two")
        assert "two:" in text and "use-before-def" in text

    def test_emit_findings_publishes_verify_events(self):
        from repro.obs import VERIFY, EventBus
        prog = assemble(".program ev\n add s1, s2, s3\n halt\n")
        findings = lint(prog)
        bus = EventBus()
        got = []

        class _Sink:
            def on_event(self, e):
                got.append(e)

        bus.attach(_Sink())
        emit_findings(prog, findings, bus)
        assert len(got) == len(findings)
        assert all(e.kind == VERIFY for e in got)
        assert all(e.arg.rule == "use-before-def" for e in got)


class TestExamplesLintClean:
    def test_every_example_program_is_clean(self):
        from repro.harness.cli import _example_programs
        seen = 0
        for label, prog in _example_programs():
            assert lint(prog) == [], label
            seen += 1
        assert seen >= 10   # quickstart + 6 tradeoff + 2 reconf + shortvec
