"""Trace histogram helpers and the CLI mix/verify verbs."""

import pytest

from repro.functional import Executor
from repro.isa import assemble


def _trace(src, nt=1):
    return Executor(assemble(src), num_threads=nt).run()


class TestHistograms:
    SRC = """
    li s1, 8
    setvl s2, s1
    vadd.vv v1, v2, v3
    vadd.vv v4, v5, v6
    add s3, s1, s1
    halt
    """

    def test_opcode_histogram(self):
        t = _trace(self.SRC)
        hist = t.threads[0].opcode_histogram()
        assert hist["vadd.vv"] == 2
        assert hist["li"] == 1
        assert hist["halt"] == 1

    def test_pool_histogram(self):
        t = _trace(self.SRC)
        hist = t.threads[0].pool_histogram()
        assert hist["varith"] == 2
        assert hist["arith"] == 3  # li, setvl, add

    def test_merged_across_threads(self):
        t = _trace("tid s1\nadd s2, s1, s1\nbarrier\nhalt", nt=4)
        hist = t.merged_opcode_histogram()
        assert hist["add"] == 4
        assert hist["barrier"] == 4


class TestCliVerbs:
    def test_mix_verb(self, capsys):
        from repro.harness.cli import main
        assert main(["mix", "--apps", "trfd"]) == 0
        out = capsys.readouterr().out
        assert "dynamic instructions" in out
        assert "setvl" in out

    def test_verify_verb(self, capsys):
        from repro.harness.cli import main
        assert main(["verify", "--apps", "sage"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "sage" in out

    def test_run_verb(self, capsys):
        from repro.harness.cli import main
        assert main(["run", "trfd", "--config", "V2-CMP",
                     "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "V2-CMP" in out

    def test_run_verb_scalar_only(self, capsys):
        from repro.harness.cli import main
        assert main(["run", "ocean", "--config", "VLT-scalar",
                     "--threads", "8", "--scalar-only"]) == 0
        out = capsys.readouterr().out
        assert "VLT-scalar" in out
