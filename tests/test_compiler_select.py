"""Conditional (Select/Cmp) compilation: masked vector execution."""

import numpy as np
import pytest

from repro.compiler import (Array, Assign, Cmp, CompileOptions, Const,
                            Kernel, Loop, Select, Var, VectorizationError,
                            compile_kernel)
from repro.functional import Executor

_NP_CMP = {"<": np.less, "<=": np.less_equal, "==": np.equal}


def run_select(cond_op, n=70, vectorize=True, b_const=False):
    rng = np.random.default_rng(11)
    xv = np.round(rng.standard_normal(n), 4)
    yv = np.round(rng.standard_normal(n), 4)
    i = Var("i")
    x = Array("x", (n,), xv)
    y = Array("y", (n,), yv)
    z = Array("z", (n,))
    b_expr = Const(9.0) if b_const else y[i]._expr()
    sel = Select(Cmp(cond_op, x[i]._expr(), Const(0.0)),
                 x[i] * 2.0, b_expr)
    kern = Kernel("sel", [Loop(i, n, [Assign(z[i], sel)], parallel=True)])
    prog = compile_kernel(kern, CompileOptions(vectorize=vectorize))
    ex = Executor(prog)
    ex.run()
    got = ex.mem.read_f64_array(prog.symbol_addr("z"), n)
    mask = _NP_CMP[cond_op](xv, 0.0)
    want = np.where(mask, xv * 2.0, 9.0 if b_const else yv)
    return got, want, prog


class TestSelect:
    @pytest.mark.parametrize("op", ["<", "<=", "=="])
    def test_vector_path(self, op):
        got, want, prog = run_select(op)
        assert np.allclose(got, want)
        assert any(i.spec.writes_mask for i in prog.instrs)

    @pytest.mark.parametrize("op", ["<", "<="])
    def test_scalar_path(self, op):
        got, want, prog = run_select(op, vectorize=False)
        assert np.allclose(got, want)
        assert not any(i.spec.is_vector for i in prog.instrs)

    def test_scalar_else_operand_uses_merge_vs(self):
        got, want, prog = run_select("<", b_const=True)
        assert np.allclose(got, want)
        assert any(i.op == "vfmerge.vs" for i in prog.instrs)

    def test_select_inside_arithmetic(self):
        n = 33
        rng = np.random.default_rng(12)
        xv = rng.standard_normal(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        z = Array("z", (n,))
        clamped = Select(Cmp("<", x[i]._expr(), Const(0.0)),
                         Const(0.0), x[i]._expr())
        kern = Kernel("relu", [
            Loop(i, n, [Assign(z[i], clamped + 1.0)], parallel=True)])
        prog = compile_kernel(kern)
        ex = Executor(prog)
        ex.run()
        got = ex.mem.read_f64_array(prog.symbol_addr("z"), n)
        assert np.allclose(got, np.where(xv < 0, 0.0, xv) + 1.0)

    def test_nested_select_rejected(self):
        n = 8
        i = Var("i")
        x = Array("x", (n,))
        z = Array("z", (n,))
        inner = Select(Cmp("<", x[i]._expr(), Const(0.0)),
                       Const(0.0), Const(1.0))
        outer = Select(Cmp("<", x[i]._expr(), Const(1.0)),
                       inner, Const(2.0))
        kern = Kernel("nest", [Loop(i, n, [Assign(z[i], outer)],
                                    parallel=True)])
        with pytest.raises(VectorizationError, match="nested"):
            compile_kernel(kern)

    def test_bad_comparison_op(self):
        with pytest.raises(ValueError):
            Cmp(">", Const(0.0), Const(1.0))
