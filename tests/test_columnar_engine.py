"""Columnar replay engine: bit-identity against the event-machine oracle.

The columnar engine (:mod:`repro.timing.columnar`) replays the flat
trace arrays with cycle-window batching and steady-state memoisation.
Its contract is exact equivalence: every :class:`RunResult` field equal
to the event machine's, across the full figure-3/5/6 run matrix, with
and without the steady-state skip, and with observability attached.
"""

import pytest

from repro.harness import experiments as E
from repro.timing import ColumnarMachine, ENGINES, TimingMachine, simulate
from repro.timing.config import BASE, get_config
from repro.timing.machine import Machine, validate_engine
from repro.timing.run import simulate_traced, trace_for
from repro.verify import differential_check
from repro.workloads import get_workload

#: a short but steady-state-heavy workload: vector loop body plus a
#: tight scalar inner loop, enough iterations for the period-skip to arm
_PERIODIC = """
.space x 8192
li s5, 0
li s6, 25
rep:
li s1, 64
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfmul.vs v2, v1, f1
vfadd.vv v3, v2, v1
vst v3, 0(s3)
li s4, 0
inner:
addi s4, s4, 1
slti s7, s4, 12
bne s7, s0, inner
addi s5, s5, 1
blt s5, s6, rep
halt
"""


def _run_both(app, config, threads, scalar_only=False):
    prog = get_workload(app).program(scalar_only=scalar_only)
    cfg = get_config(config)
    trace = trace_for(prog, threads)
    r_ev = simulate(prog, cfg, num_threads=threads, trace=trace)
    r_col = simulate(prog, cfg, num_threads=threads, trace=trace,
                     engine="columnar")
    return r_ev, r_col


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("event", "columnar")

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown timing engine"):
            validate_engine("vectorised")

    def test_factory_picks_machine_class(self):
        prog = get_workload("trfd").program()
        trace = trace_for(prog, 1)
        threads = [t.ops for t in trace.threads]
        m_ev = TimingMachine(BASE, threads)
        m_col = TimingMachine(BASE, threads, engine="columnar")
        assert isinstance(m_ev, Machine)
        assert isinstance(m_col, ColumnarMachine)

    def test_simulate_rejects_unknown_engine(self):
        prog = get_workload("trfd").program()
        with pytest.raises(ValueError, match="unknown timing engine"):
            simulate(prog, BASE, engine="nope")


class TestFullMatrixIdentity:
    """The acceptance bar: the full fig3/5/6 matrix, field for field."""

    def test_full_matrix_bit_identity(self):
        specs = E.matrix_for(["fig3", "fig5", "fig6"])
        assert len(specs) >= 30
        mismatches = []
        for spec in specs:
            r_ev, r_col = _run_both(spec.app, spec.config, spec.threads,
                                    scalar_only=spec.scalar_only)
            if r_ev != r_col:
                mismatches.append(str(spec))
        assert not mismatches, f"engines diverge on: {mismatches}"


class TestDifferentialCheck:
    """The committed-op stream check, run through the columnar engine."""

    @pytest.mark.parametrize("app,config,threads", [
        ("trfd", "base", 1),
        ("trfd", "V2-SMT", 2),       # SMT contexts share one SU
        ("multprec", "V4-CMT", 4),   # two SMT SUs
        ("ocean", "CMT", 4),         # no vector unit
    ])
    def test_columnar_commit_stream_matches_functional(self, app, config,
                                                       threads):
        prog = get_workload(app).program(
            scalar_only=config in ("CMT", "VLT-scalar"))
        report = differential_check(prog, get_config(config),
                                    num_threads=threads, engine="columnar")
        assert report.ok, report.render()


class TestSteadySkip:
    def test_skip_vs_noskip_identity(self):
        from repro.isa import assemble
        prog = assemble(_PERIODIC)
        trace = trace_for(prog, 1)
        threads = [t.ops for t in trace.threads]
        cols = [t.columns() for t in trace.threads]
        r_skip = ColumnarMachine(BASE, threads, columns=cols).run()
        r_noskip = ColumnarMachine(BASE, threads, columns=cols,
                                   steady_skip=False).run()
        r_ev = Machine(BASE, threads).run()
        assert r_skip == r_noskip == r_ev

    def test_skip_actually_fires_on_periodic_code(self):
        from repro.isa import assemble
        prog = assemble(_PERIODIC)
        trace = trace_for(prog, 1)
        cols = [t.columns() for t in trace.threads]
        m = ColumnarMachine(BASE, [t.ops for t in trace.threads],
                            columns=cols)
        jumps = []
        orig = m._ss_jump

        def spy(armed, C, k, deltas, live):
            jumps.append(k)
            return orig(armed, C, k, deltas, live)

        m._ss_jump = spy
        m.run()
        assert jumps and max(jumps) > 1


class TestObservability:
    """With an event bus attached the engines must emit identical
    streams (the columnar engine disables the steady-state skip but
    keeps window batching, which is event-invisible)."""

    @pytest.mark.parametrize("app,config,threads", [
        ("trfd", "base", 1),
        ("trfd", "V4-CMT", 4),
    ])
    def test_event_streams_identical(self, app, config, threads):
        prog = get_workload(app).program()
        cfg = get_config(config)
        trace = trace_for(prog, threads)
        tr_ev = simulate_traced(prog, cfg, num_threads=threads,
                                trace=trace, max_events=2_000_000)
        tr_col = simulate_traced(prog, cfg, num_threads=threads,
                                 trace=trace, max_events=2_000_000,
                                 engine="columnar")
        import dataclasses
        assert (dataclasses.replace(tr_ev.result, metrics=None)
                == dataclasses.replace(tr_col.result, metrics=None))

        def norm(log):
            return [(e.cycle, e.kind, e.unit, e.dur, e.arg, e.reason,
                     None if e.dynop is None else (e.dynop.pc, e.dynop.op))
                    for e in log.events]

        assert norm(tr_ev.events) == norm(tr_col.events)


class TestNpzColumns:
    def test_decoded_trace_drives_columnar_engine(self):
        from repro.functional.trace import trace_from_bytes, trace_to_bytes
        prog = get_workload("trfd").program()
        trace = trace_for(prog, 2)
        rt = trace_from_bytes(trace_to_bytes(trace))
        # decode attaches the columnar view: no re-encode needed
        assert all(t._cols is not None for t in rt.threads)
        cfg = get_config("V2-CMP")
        r_ev = simulate(prog, cfg, num_threads=2, trace=trace)
        r_col = simulate(prog, cfg, num_threads=2, trace=rt,
                         engine="columnar")
        assert r_ev == r_col
