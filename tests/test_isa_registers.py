"""Register model: naming, parsing, uid mapping."""

import pytest

from repro.isa.registers import (MVL, NUM_REG_UIDS, VL, VM, F_BASE, S_BASE,
                                 V_BASE, VL_UID, VM_UID, freg, is_vector_reg,
                                 parse_reg, reg_name, reg_uid, sreg,
                                 uid_is_scalar, vreg)


class TestConstructors:
    def test_sreg_range(self):
        assert sreg(0) == ("s", 0)
        assert sreg(31) == ("s", 31)
        with pytest.raises(ValueError):
            sreg(32)
        with pytest.raises(ValueError):
            sreg(-1)

    def test_freg_vreg_range(self):
        assert freg(5) == ("f", 5)
        assert vreg(31) == ("v", 31)
        with pytest.raises(ValueError):
            freg(32)
        with pytest.raises(ValueError):
            vreg(99)

    def test_mvl_is_cray_x1(self):
        assert MVL == 64


class TestUids:
    def test_uid_layout_disjoint(self):
        uids = ([reg_uid(sreg(i)) for i in range(32)]
                + [reg_uid(freg(i)) for i in range(32)]
                + [reg_uid(vreg(i)) for i in range(32)]
                + [reg_uid(VM), reg_uid(VL)])
        assert len(set(uids)) == len(uids)
        assert max(uids) == NUM_REG_UIDS - 1
        assert min(uids) == 0

    def test_uid_bases(self):
        assert reg_uid(sreg(0)) == S_BASE
        assert reg_uid(freg(0)) == F_BASE
        assert reg_uid(vreg(0)) == V_BASE
        assert reg_uid(VM) == VM_UID
        assert reg_uid(VL) == VL_UID

    def test_uid_scalar_classification(self):
        assert uid_is_scalar(reg_uid(sreg(7)))
        assert uid_is_scalar(reg_uid(freg(7)))
        assert uid_is_scalar(reg_uid(VL))  # vl is written by the SU
        assert not uid_is_scalar(reg_uid(vreg(7)))
        assert not uid_is_scalar(reg_uid(VM))

    def test_uid_rejects_bad_class(self):
        with pytest.raises(ValueError):
            reg_uid(("x", 0))


class TestNames:
    @pytest.mark.parametrize("reg", [sreg(3), freg(0), vreg(31), VM, VL])
    def test_roundtrip(self, reg):
        assert parse_reg(reg_name(reg)) == reg

    @pytest.mark.parametrize("text", ["", "s", "s32", "q3", "v-1", "vmm",
                                      "f 1"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_reg(text)

    def test_is_vector_reg(self):
        assert is_vector_reg(vreg(0))
        assert is_vector_reg(VM)
        assert not is_vector_reg(sreg(0))
        assert not is_vector_reg(VL)
