"""Dynamic VLT reconfiguration (paper Section 3.3).

Programs may switch the number of lane partitions between barrier-
delimited phases via ``vltcfg n``: high-DLP phases run one thread on all
lanes, low-DLP phases run several threads on lane subsets.
"""

import pytest

from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import BASE, V4_CMP


def phased_program(vec_phase_cfg: int):
    """Phase A: thread 0 does long-vector work on ``vec_phase_cfg``
    partitions; phase B: all 4 threads do short-vector work."""
    return assemble(f"""
    tid s1
    vltcfg {vec_phase_cfg}
    bne s1, s0, wait_a
    li s10, 0
    li s11, 60
    rep_a:
    li s2, 64
    setvl s3, s2
    vfadd.vv v1, v2, v3
    vfmul.vv v4, v1, v2
    vfadd.vv v5, v4, v1
    addi s10, s10, 1
    blt s10, s11, rep_a
    wait_a:
    barrier
    vltcfg 4
    li s10, 0
    li s11, 40
    rep_b:
    li s2, 8
    setvl s3, s2
    vfadd.vv v1, v2, v3
    vfmul.vv v4, v1, v2
    addi s10, s10, 1
    blt s10, s11, rep_b
    barrier
    halt
    """)


class TestDynamicReconfiguration:
    def test_wide_phase_beats_static_partitioning(self):
        """vltcfg 1 gives phase A all 8 lanes; static 4-way partitioning
        leaves thread 0 on 2 lanes for its long vectors."""
        dynamic = simulate(phased_program(1), V4_CMP, num_threads=4)
        static = simulate(phased_program(4), V4_CMP, num_threads=4)
        assert dynamic.cycles < static.cycles

    def test_noop_vltcfg_is_cheap(self):
        prog = assemble("""
        vltcfg 0
        vltcfg 0
        vltcfg 0
        li s1, 1
        halt
        """)
        r = simulate(prog, BASE, num_threads=1)
        assert r.cycles < 50

    def test_vector_work_from_unpartitioned_thread_rejected(self):
        # after vltcfg 1, only thread 0 owns lanes; thread 1 issuing
        # vector work is a program error
        prog = assemble("""
        tid s1
        vltcfg 1
        li s2, 8
        setvl s3, s2
        vfadd.vv v1, v2, v3
        barrier
        halt
        """)
        with pytest.raises(RuntimeError, match="partitioned"):
            simulate(prog, V4_CMP, num_threads=2)

    def test_invalid_partition_count_rejected(self):
        prog = assemble("vltcfg 3\nli s1, 1\nhalt")
        with pytest.raises(ValueError, match="split"):
            simulate(prog, BASE, num_threads=1)

    def test_repartition_preserves_utilization_accounting(self):
        r = simulate(phased_program(1), V4_CMP, num_threads=4)
        u = r.utilization
        assert u.total == 3 * 8 * r.cycles
        # element work: 60*3 ops at VL 64 + 4 threads * 40*2 ops at VL 8
        assert u.busy == 60 * 3 * 64 + 4 * 40 * 2 * 8
