"""Smoke-run every example script (release-quality gate)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # every example reports results


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "vlt_short_vectors", "scalar_threads_on_lanes",
            "compiler_tradeoff", "dynamic_reconfiguration"} <= names
