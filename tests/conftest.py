"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functional import Executor
from repro.isa import ProgramBuilder, assemble
from repro.timing import simulate
from repro.timing.config import base_config


def run_asm(src: str, num_threads: int = 1, memory_kib: int = 64):
    """Assemble and functionally execute; returns (trace, executor, program)."""
    prog = assemble(src, memory_kib=memory_kib)
    ex = Executor(prog, num_threads=num_threads)
    trace = ex.run()
    return trace, ex, prog


def time_asm(src: str, lanes: int = 8, num_threads: int = 1,
             memory_kib: int = 64):
    """Assemble and run through the timing simulator; returns RunResult."""
    prog = assemble(src, memory_kib=memory_kib)
    return simulate(prog, base_config(lanes=lanes), num_threads=num_threads)


def warm_cycles(body: str, lanes: int = 8, memory_kib: int = 64,
                cfg=None, data: str = "") -> int:
    """Cycles of a warm (second) execution of ``body``.

    The body runs twice through the same pcs with a barrier after each
    pass, warming caches and predictors; returns the second phase's
    duration.  ``data`` holds assembler data directives.  ``s20``/``s21``
    are reserved for the harness loop.
    """
    src = f"""
    {data}
    li s20, 0
    li s21, 2
    top:
    {body}
    barrier
    addi s20, s20, 1
    blt s20, s21, top
    halt
    """
    from repro.isa import assemble
    prog = assemble(src, memory_kib=memory_kib)
    r = simulate(prog, cfg if cfg is not None else base_config())
    return r.phase_durations()[1]


@pytest.fixture
def builder() -> ProgramBuilder:
    return ProgramBuilder("test", memory_kib=64)


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    """Drop content-digest-keyed trace memos between tests (hermetic)."""
    from repro.timing import clear_trace_cache
    clear_trace_cache()
    yield
    clear_trace_cache()
