"""The bench-regression gate (``benchmarks/compare_bench.py``).

Regression tests for the zero-as-missing bug: a candidate row whose
gated throughput is 0.0 (bench collapse, crashed run writing zeros)
used to be skipped as "missing" and the gate passed vacuously.
"""

import importlib.util
import math
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "compare_bench", _ROOT / "benchmarks" / "compare_bench.py")
cb = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cb)


def _payload(**overrides):
    """A minimal well-formed bench payload covering every gated metric."""
    results = {
        "end_to_end": {"cycles_per_s": 1_000_000.0},
        "timing_replay": {"cycles_per_s": 2_000_000.0},
        "timing_replay_columnar": {"cycles_per_s": 40_000_000.0,
                                   "speedup_vs_event": 20.0},
        "functional": {"ops_per_s": 500_000.0},
        "trace_generation_fast": {"ops_per_s": 6_000_000.0,
                                  "speedup_vs_reference": 12.0},
    }
    for key, row in overrides.items():
        results[key] = row
    return {"benchmark": "simulator_speed", "results": results}


class TestMetric:
    def test_zero_is_a_value_not_missing(self):
        p = _payload(end_to_end={"cycles_per_s": 0.0})
        assert cb._metric(p, "end_to_end", "cycles_per_s") == 0.0

    def test_absent_row_and_absent_metric_are_missing(self):
        p = _payload()
        del p["results"]["functional"]
        assert cb._metric(p, "functional", "ops_per_s") is None
        assert cb._metric(p, "end_to_end", "nope") is None
        assert cb._metric(p, "end_to_end",
                          "cycles_per_s") == 1_000_000.0


class TestGate:
    def test_identical_payloads_pass(self):
        lines, failures = cb.compare(_payload(), _payload(), 0.30)
        assert not failures
        # every row present in the payload gates OK; rows from other
        # bench families (the service throughput file) are skipped
        assert all("OK" in ln or "skipped" in ln for ln in lines)
        assert sum("OK" in ln for ln in lines) == 5

    def test_zero_candidate_fails_the_gate(self):
        cand = _payload(timing_replay_columnar={"cycles_per_s": 0.0})
        _, failures = cb.compare(_payload(), cand, 0.30)
        assert len(failures) == 1
        assert "not a positive finite throughput" in failures[0]
        assert "timing_replay_columnar" in failures[0]

    def test_nonfinite_candidate_fails_the_gate(self):
        for bad in (math.nan, math.inf, -1.0):
            cand = _payload(end_to_end={"cycles_per_s": bad})
            _, failures = cb.compare(_payload(), cand, 0.30)
            assert failures, bad

    def test_unusable_baseline_is_skipped_not_failed(self):
        # a zero in the *baseline* means the checked-in file is bad;
        # that must not mask itself as a candidate failure
        base = _payload(functional={"ops_per_s": 0.0})
        lines, failures = cb.compare(base, _payload(), 0.30)
        assert not failures
        assert any("unusable" in ln for ln in lines)

    def test_regression_beyond_threshold_fails(self):
        cand = _payload(timing_replay={"cycles_per_s": 1_000_000.0})
        _, failures = cb.compare(_payload(), cand, 0.30)
        assert len(failures) == 1
        assert "timing_replay" in failures[0]

    def test_columnar_row_is_gated(self):
        assert ("timing_replay_columnar", "cycles_per_s") in cb._GATED

    def test_fast_trace_generation_row_is_gated(self):
        assert ("trace_generation_fast", "ops_per_s") in cb._GATED

    def test_main_exit_codes(self, tmp_path, capsys):
        import json
        b = tmp_path / "base.json"
        c = tmp_path / "cand.json"
        b.write_text(json.dumps(_payload()))
        c.write_text(json.dumps(_payload()))
        assert cb.main([str(b), str(c)]) == 0
        c.write_text(json.dumps(
            _payload(end_to_end={"cycles_per_s": 0.0})))
        assert cb.main([str(b), str(c)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out


class TestMinSpeedup:
    def test_passing_speedup(self):
        lines, failures = cb.check_min_speedups(
            _payload(), [("trace_generation_fast", 5.0)])
        assert not failures
        assert any("speedup_vs_reference" in ln and "OK" in ln
                   for ln in lines)

    def test_below_factor_fails(self):
        cand = _payload(trace_generation_fast={
            "ops_per_s": 6_000_000.0, "speedup_vs_reference": 3.0})
        _, failures = cb.check_min_speedups(
            cand, [("trace_generation_fast", 5.0)])
        assert len(failures) == 1
        assert "below required 5x" in failures[0]

    def test_missing_speedup_field_fails(self):
        cand = _payload(trace_generation_fast={"ops_per_s": 1.0})
        _, failures = cb.check_min_speedups(
            cand, [("trace_generation_fast", 5.0)])
        assert failures and "no speedup_vs_*" in failures[0]
        _, failures = cb.check_min_speedups(
            _payload(), [("nosuchrow", 2.0)])
        assert failures

    def test_columnar_speedup_field_is_found(self):
        lines, failures = cb.check_min_speedups(
            _payload(), [("timing_replay_columnar", 10.0)])
        assert not failures
        assert any("speedup_vs_event" in ln for ln in lines)

    def test_cli_flag(self, tmp_path, capsys):
        import json
        b = tmp_path / "base.json"
        c = tmp_path / "cand.json"
        b.write_text(json.dumps(_payload()))
        c.write_text(json.dumps(_payload()))
        assert cb.main([str(b), str(c),
                        "--min-speedup", "trace_generation_fast:5"]) == 0
        assert "engine speedup gates:" in capsys.readouterr().out
        assert cb.main([str(b), str(c),
                        "--min-speedup",
                        "trace_generation_fast:50"]) == 1
        out = capsys.readouterr().out
        assert "below required 50x" in out

    def test_cli_flag_rejects_malformed(self, tmp_path, capsys):
        import json
        b = tmp_path / "base.json"
        b.write_text(json.dumps(_payload()))
        with pytest.raises(SystemExit):
            cb.main([str(b), str(b), "--min-speedup", "nocolon"])
        with pytest.raises(SystemExit):
            cb.main([str(b), str(b), "--min-speedup", "key:abc"])


def _service_payload(**overrides):
    results = {
        "duplicate_burst": {"jobs": 100, "jobs_per_s": 120.0,
                            "simulated_runs": 1,
                            "dedupe_fraction": 0.99},
        "mixed_load": {"jobs": 40, "jobs_per_s": 15.0,
                       "simulated_runs": 4},
    }
    results.update(overrides)
    return {"benchmark": "service_throughput", "results": results}


class TestMinMetric:
    def test_floor_met(self):
        lines, failures = cb.check_min_metrics(
            _service_payload(),
            [("duplicate_burst", "dedupe_fraction", 0.9)])
        assert not failures
        assert any("OK" in ln for ln in lines)

    def test_below_floor_fails(self):
        cand = _service_payload(
            duplicate_burst={"jobs_per_s": 120.0,
                             "dedupe_fraction": 0.5})
        _, failures = cb.check_min_metrics(
            cand, [("duplicate_burst", "dedupe_fraction", 0.9)])
        assert len(failures) == 1
        assert "below required 0.9" in failures[0]

    def test_missing_metric_fails(self):
        _, failures = cb.check_min_metrics(
            _service_payload(), [("duplicate_burst", "nosuch", 1.0),
                                 ("nosuchrow", "x", 1.0)])
        assert len(failures) == 2
        assert all("missing" in f for f in failures)

    def test_service_rows_share_the_regression_gate(self):
        """The service throughput rows ride the same --max-regression
        comparison; simulator-only rows are skipped, not failed."""
        assert ("duplicate_burst", "jobs_per_s") in cb._GATED
        assert ("mixed_load", "jobs_per_s") in cb._GATED
        lines, failures = cb.compare(_service_payload(),
                                     _service_payload(), 0.30)
        assert not failures
        assert any("duplicate_burst.jobs_per_s" in ln and "OK" in ln
                   for ln in lines)
        assert any("end_to_end" in ln and "skipped" in ln
                   for ln in lines)
        slow = _service_payload(
            duplicate_burst={"jobs_per_s": 10.0,
                             "dedupe_fraction": 0.99})
        _, failures = cb.compare(_service_payload(), slow, 0.30)
        assert failures and "duplicate_burst" in failures[0]

    def test_cli_flag(self, tmp_path, capsys):
        import json
        b = tmp_path / "base.json"
        b.write_text(json.dumps(_service_payload()))
        assert cb.main([str(b), str(b), "--min-metric",
                        "duplicate_burst:dedupe_fraction:0.9"]) == 0
        assert "metric floor gates:" in capsys.readouterr().out
        assert cb.main([str(b), str(b), "--min-metric",
                        "duplicate_burst:dedupe_fraction:0.999"]) == 1
        assert "below required" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            cb.main([str(b), str(b), "--min-metric", "a:b"])
        with pytest.raises(SystemExit):
            cb.main([str(b), str(b), "--min-metric", "a:b:xyz"])
