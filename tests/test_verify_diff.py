"""Differential checker + shrinker: agreement on healthy runs, detection
of injected timing bugs, and minimization of the failing program."""

import pytest

import repro.verify.diff as D
from repro.functional.executor import Executor
from repro.isa.assembler import assemble
from repro.timing.config import get_config
from repro.verify import differential_check, shrink_on_diff, shrink_program

# small SPMD kernel: scalar loop with muls plus a vector tail; exercises
# SU commit, VU issue, and (on CMT) lane-core issue streams
SRC = """
.program difftarget
.f64 x 1.0 2.0 3.0 4.0 5.0 6.0 7.0 8.0
.space out 64
    tid s1
    ntid s2
    li s3, 4
    li s4, 0
loop:
    mul s5, s4, s3
    addi s5, s5, 1
    add s4, s4, s2
    blt s4, s3, loop
    barrier
    li s6, 8
    setvl s7, s6
    li s8, &x
    li s9, &out
    vld v1, 0(s8)
    vfadd.vv v2, v1, v1
    vst v2, 0(s9)
    halt
"""


def _prog():
    return assemble(SRC, name="difftarget")


def _inject_dropped_mul_commits(monkeypatch):
    """Timing bug: the machine 'forgets' to commit every mul."""
    real = D._run_timing

    class _Filter:
        def __init__(self, inner):
            self.inner = inner

        def on_event(self, e):
            if e.kind == D.COMMIT and e.dynop.op == "mul":
                return
            self.inner.on_event(e)

    def buggy(cfg, trace, max_cycles, bus):
        filtered = D.EventBus()
        for sink in bus.sinks:
            filtered.attach(_Filter(sink))
        return real(cfg, trace, max_cycles, filtered)

    monkeypatch.setattr(D, "_run_timing", buggy)


class TestAgreement:
    @pytest.mark.parametrize("config,threads", [
        ("base", 1), ("V2-SMT", 2), ("V2-CMP", 2)])
    def test_healthy_run_agrees(self, config, threads):
        report = differential_check(_prog(), get_config(config),
                                    num_threads=threads)
        assert report.ok, report.render()
        assert report.ops_checked > 0 and report.cycles > 0
        assert "OK" in report.render()

    def test_lane_scalar_mode_agrees(self):
        # CMT places threads on lane cores (no vector code allowed there)
        src = SRC.replace(".program difftarget", ".program scalartarget")
        head, _, _ = src.partition("    barrier")
        report = differential_check(
            assemble(head + "    halt\n", name="scalartarget"),
            get_config("CMT"), num_threads=4)
        assert report.ok, report.render()

    def test_explicit_trace_override(self):
        prog = _prog()
        tut = Executor(prog, num_threads=1, record_trace=True).run()
        report = differential_check(prog, get_config("base"), trace=tut)
        assert report.ok, report.render()


class TestInjectedBug:
    def test_dropped_commits_are_caught(self, monkeypatch):
        _inject_dropped_mul_commits(monkeypatch)
        report = differential_check(_prog(), get_config("base"))
        assert not report.ok
        assert all(m.kind == "commit" for m in report.mismatches)
        assert "mul" in report.mismatches[0].detail
        assert "mismatch" in report.render()

    def test_corrupt_trace_is_caught(self):
        prog = _prog()
        tut = Executor(prog, num_threads=1, record_trace=True).run()
        tut.threads[0].ops.pop(3)   # simulate a corrupt cached trace
        report = differential_check(prog, get_config("base"), trace=tut)
        assert not report.ok
        assert any(m.kind == "trace" for m in report.mismatches)

    def test_mismatch_list_is_capped(self, monkeypatch):
        _inject_dropped_mul_commits(monkeypatch)
        # many muls -> many dropped commits -> the report must stay bounded
        body = "\n".join(f"    mul s{4 + i % 3}, s3, s3"
                         for i in range(3 * D.MAX_MISMATCHES))
        src = f".program manymul\n    li s3, 7\n{body}\n    halt\n"
        report = differential_check(assemble(src, name="manymul"),
                                    get_config("base"))
        assert len(report.mismatches) == D.MAX_MISMATCHES
        assert report.truncated

    def test_runner_verify_hook_reports_nonretryable_failure(
            self, monkeypatch):
        from repro.harness.runner import (ExperimentRunner, RunSpec,
                                          _execute_spec)
        from repro.workloads import get_workload
        get_workload("trfd").program()   # pre-build outside the clock
        spec = RunSpec("trfd", "base", 1)
        payload = _execute_spec(spec, None, 50_000_000, verify=True)
        assert "result" in payload
        assert "differential_check" in payload["phases"]

        _inject_dropped_mul_commits(monkeypatch)
        payload = _execute_spec(spec, None, 50_000_000, verify=True)
        assert payload["error"]["type"] == "DifferentialMismatch"
        # deterministic failures must not burn retry attempts
        assert not ExperimentRunner._retryable(payload)


class TestShrinking:
    def test_shrink_requires_a_failing_program(self):
        with pytest.raises(ValueError, match="does not exhibit"):
            shrink_program(_prog(), lambda p: False)

    def test_shrink_with_synthetic_predicate(self):
        # "bug" = program still contains a mul; minimal repro is mul+halt
        res = shrink_program(
            _prog(), lambda p: any(i.op == "mul" for i in p.instrs))
        assert res.final_len <= 2
        assert any(i.op == "mul" for i in res.program.instrs)
        assert res.program.finalized
        assert "shrunk" in res.render()

    def test_shrink_preserves_branch_targets(self):
        # the loop must survive shrinking when the predicate needs it
        res = shrink_program(
            _prog(), lambda p: any(i.op == "blt" for i in p.instrs))
        blt = next(i for i in res.program.instrs if i.op == "blt")
        assert 0 <= blt.target < len(res.program.instrs)

    def test_injected_bug_shrinks_to_small_repro(self, monkeypatch):
        _inject_dropped_mul_commits(monkeypatch)
        prog = _prog()
        assert not differential_check(prog, get_config("base")).ok
        res = shrink_on_diff(prog, get_config("base"))
        assert res.final_len <= 20       # acceptance bar from the issue
        assert res.final_len < res.original_len
        assert any(i.op == "mul" for i in res.program.instrs)
        # the minimized program still fails the differential check
        tut = Executor(res.program, num_threads=1, record_trace=True).run()
        assert not differential_check(res.program, get_config("base"),
                                      trace=tut).ok
