"""Vector unit timing: occupancy, chaining, issue width, partitioning."""

import pytest

from repro.isa import assemble
from repro.timing import simulate
from repro.timing.config import BASE, base_config
from tests.conftest import time_asm


def vec_body(n_instr, vl, dep=False):
    """n vector fp adds at the given VL, independent or one chain."""
    setup = f"li s1, {vl}\nsetvl s2, s1\n"
    ops = []
    for i in range(n_instr):
        if dep:
            ops.append("vfadd.vv v1, v1, v2")
        else:
            ops.append(f"vfadd.vv v{3 + i % 8}, v1, v2")
    return setup + "\n".join(ops)


def warm_cycles(body, lanes=8):
    src = f"""
    li s20, 0
    li s21, 2
    top:
    {body}
    barrier
    addi s20, s20, 1
    blt s20, s21, top
    halt
    """
    r = time_asm(src, lanes=lanes)
    return r.phase_durations()[1], r


class TestOccupancy:
    def test_occupancy_scales_inversely_with_lanes(self):
        # dependent chain of VL-64 ops: each takes ceil(64/lanes) cycles
        body = vec_body(40, 64, dep=True)
        c8, _ = warm_cycles(body, lanes=8)
        c1, _ = warm_cycles(body, lanes=1)
        # 1 lane: 64 cycles/op vs 8 lanes: 8 cycles/op
        assert c1 > c8 * 4

    def test_short_vectors_do_not_benefit_from_lanes(self):
        body = vec_body(40, 4, dep=True)
        c8, _ = warm_cycles(body, lanes=8)
        c4, _ = warm_cycles(body, lanes=4)
        # VL=4 occupies 1 cycle on both 4 and 8 lanes
        assert abs(c8 - c4) <= max(4, 0.1 * c4)

    def test_element_ops_counted(self):
        src = vec_body(10, 16) + "\nhalt"
        r = time_asm(src)
        assert r.vector_unit.element_ops == 160
        assert r.vector_unit.issued == 10


class TestChaining:
    def test_dependent_chain_vs_independent(self):
        dep, _ = warm_cycles(vec_body(30, 64, dep=True))
        ind, _ = warm_cycles(vec_body(30, 64, dep=False))
        # with 3 FUs and chaining, independent ops overlap more
        assert ind <= dep

    def test_chained_chain_faster_than_full_serialisation(self):
        # 30 dependent VL-64 ops at 8 lanes: occupancy 8 each.
        # Chaining starts a dependent op chain_delay after its producer,
        # so the chain runs at ~8 cycles/op, not (8+latency)/op.
        dep, _ = warm_cycles(vec_body(30, 64, dep=True))
        assert dep < 30 * (8 + 3) + 60   # well under unchained serial time


class TestIssueBandwidth:
    def test_two_per_cycle_limit(self):
        # 60 independent VL-4 ops: occupancy 1 cycle each, so VCL issue
        # width (2/cycle) is the limiter: >= 30 cycles
        c, _ = warm_cycles(vec_body(60, 4, dep=False))
        assert c >= 30

    def test_long_vectors_saturate_fus_at_low_issue_rate(self):
        # 3 FUs x occupancy 8 = one instruction every ~2.7 cycles busies
        # all FUs; issue width 2 is not the limiter for VL 64
        c, r = warm_cycles(vec_body(60, 64, dep=False))
        assert c >= 60 * 8 / 3 * 0.8


class TestVIQBackpressure:
    def test_dispatch_stalls_when_viq_full(self):
        # many long-occupancy vector ops from a fast frontend
        src = vec_body(80, 64, dep=False) + "\nhalt"
        r = time_asm(src, lanes=1)
        assert r.scalar_units[0].dispatch_stall_viq > 0


class TestUtilizationAccounting:
    def test_buckets_sum_to_total(self):
        src = vec_body(20, 24, dep=True) + "\nhalt"
        r = time_asm(src)
        u = r.utilization
        assert u.total == 3 * 8 * r.cycles
        assert u.busy > 0

    def test_partial_idle_from_odd_vl(self):
        # VL 12 on 8 lanes: 2-cycle occupancy covering 12 of 16 slots
        src = vec_body(20, 12, dep=True) + "\nhalt"
        r = time_asm(src)
        assert r.utilization.partly_idle > 0

    def test_full_vl_has_no_partial_idle(self):
        src = vec_body(20, 64, dep=True) + "\nhalt"
        r = time_asm(src)
        assert r.utilization.partly_idle == 0

    def test_fractions_sum_to_one(self):
        src = vec_body(20, 24, dep=True) + "\nhalt"
        r = time_asm(src)
        assert sum(r.utilization.fractions().values()) == pytest.approx(1.0)


class TestScalarVectorInteraction:
    def test_scalar_operand_feeds_vector(self):
        src = """
        li s1, 64
        setvl s2, s1
        li s3, 7
        vadd.vs v1, v2, s3
        vredsum s4, v1
        halt
        """
        r = time_asm(src)
        assert r.cycles > 0
        assert r.vector_unit.issued == 2

    def test_reduction_returns_to_scalar_side(self):
        # the scalar consumer of a reduction must wait for the VU
        src = """
        li s1, 64
        setvl s2, s1
        vfadd.vv v1, v2, v3
        vfredsum f1, v1
        fadd f2, f1, f1
        halt
        """
        r = time_asm(src)
        # reduction completes after occupancy + latency + transfers
        assert r.cycles >= 8 + 8


class TestVectorMemoryTiming:
    def test_unit_stride_faster_than_strided(self):
        # ten 64-element loads each; the strided variant's 512-byte
        # stride maps all elements onto two L2 banks (bank camping)
        unit_loads = "\n".join(
            f"vld v{1 + i % 8}, {i * 512}(s3)" for i in range(10))
        strided_loads = "\n".join(
            f"vlds v{1 + i % 8}, {i * 8}(s3), s4" for i in range(10))
        unit = f"""
        .space x 32768
        li s1, 64
        setvl s2, s1
        li s3, &x
        {unit_loads}
        """
        strided = f"""
        .space x 32768
        li s1, 64
        setvl s2, s1
        li s3, &x
        li s4, 512
        {strided_loads}
        """
        cu, _ = warm_cycles(unit)
        cs, _ = warm_cycles(strided)
        assert cs > cu * 1.5
