"""Code generation: compiled kernels verified against NumPy."""

import numpy as np
import pytest

from repro.compiler import (Array, Assign, CompileOptions, Const, Kernel,
                            Loop, Reduce, Var, compile_kernel, sqrt)
from repro.functional import Executor


def run(kernel, options=None, num_threads=1):
    prog = compile_kernel(kernel, options)
    ex = Executor(prog, num_threads=num_threads)
    ex.run()
    return ex, prog


def read(ex, prog, name, count):
    return ex.mem.read_f64_array(prog.symbol_addr(name), count)


class TestElementwise:
    def _axpy(self, n):
        rng = np.random.default_rng(1)
        xv, yv = rng.random(n), rng.random(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        y = Array("y", (n,), yv)
        z = Array("z", (n,))
        kern = Kernel("axpy", [
            Loop(i, n, [Assign(z[i], 2.5 * x[i] + y[i])], parallel=True)])
        return kern, xv, yv

    @pytest.mark.parametrize("n", [1, 7, 64, 65, 200])
    def test_axpy_all_lengths(self, n):
        kern, xv, yv = self._axpy(n)
        ex, prog = run(kern)
        assert np.allclose(read(ex, prog, "z", n), 2.5 * xv + yv)

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_scalar_and_vector_paths_agree(self, vectorize):
        kern, xv, yv = self._axpy(33)
        ex, prog = run(kern, CompileOptions(vectorize=vectorize))
        assert np.allclose(read(ex, prog, "z", 33), 2.5 * xv + yv)

    def test_vector_path_emits_vector_ops(self):
        kern, *_ = self._axpy(64)
        prog_v = compile_kernel(kern)
        assert any(i.spec.is_vector for i in prog_v.instrs)

    def test_scalar_path_emits_no_vector_ops(self):
        kern, *_ = self._axpy(64)
        prog_s = compile_kernel(kern, CompileOptions(vectorize=False))
        assert not any(i.spec.is_vector for i in prog_s.instrs)

    def test_division_and_sqrt(self):
        n = 48
        rng = np.random.default_rng(2)
        xv = rng.random(n) + 1.0
        i = Var("i")
        x = Array("x", (n,), xv)
        z = Array("z", (n,))
        kern = Kernel("ds", [
            Loop(i, n, [Assign(z[i], sqrt(x[i]) / (x[i] + 1.0))],
                 parallel=True)])
        ex, prog = run(kern)
        assert np.allclose(read(ex, prog, "z", n),
                           np.sqrt(xv) / (xv + 1.0))

    def test_scalar_minus_vector(self):
        n = 16
        xv = np.arange(float(n))
        i = Var("i")
        x = Array("x", (n,), xv)
        z = Array("z", (n,))
        kern = Kernel("rsub", [
            Loop(i, n, [Assign(z[i], 10.0 - x[i])], parallel=True)])
        ex, prog = run(kern)
        assert np.allclose(read(ex, prog, "z", n), 10.0 - xv)

    def test_scalar_divided_by_vector(self):
        n = 16
        xv = np.arange(1.0, n + 1)
        i = Var("i")
        x = Array("x", (n,), xv)
        z = Array("z", (n,))
        kern = Kernel("rcp", [
            Loop(i, n, [Assign(z[i], 1.0 / x[i])], parallel=True)])
        ex, prog = run(kern)
        assert np.allclose(read(ex, prog, "z", n), 1.0 / xv)


class TestStrides:
    def test_column_access_uses_strided_memory(self):
        n = 12
        rng = np.random.default_rng(3)
        av = rng.random((n, n))
        i, j = Var("i"), Var("j")
        A = Array("A", (n, n), av)
        z = Array("z", (n, n))
        # vectorize i (stride n) with fixed j loop outside
        kern = Kernel("col", [
            Loop(j, n, [
                Loop(i, n, [Assign(z[i, j], A[i, j] * 2.0)], parallel=True),
            ]),
        ])
        prog = compile_kernel(kern, CompileOptions(policy="innermost"))
        assert any(i_.op in ("vlds", "vsts") for i_ in prog.instrs)
        ex = Executor(prog)
        ex.run()
        got = read(ex, prog, "z", n * n).reshape(n, n)
        assert np.allclose(got, av * 2.0)


class TestReductions:
    def test_dot_product(self):
        n = 100
        rng = np.random.default_rng(4)
        xv, yv = rng.random(n), rng.random(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        y = Array("y", (n,), yv)
        s = Array("s", (1,))
        kern = Kernel("dot", [
            Loop(i, n, [Reduce("+", s[0], x[i] * y[i])], parallel=True)])
        ex, prog = run(kern)
        assert np.isclose(read(ex, prog, "s", 1)[0], xv @ yv)

    @pytest.mark.parametrize("op,ref", [("min", np.min), ("max", np.max)])
    def test_min_max_reductions(self, op, ref):
        n = 77
        rng = np.random.default_rng(5)
        xv = rng.standard_normal(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        s = Array("s", (1,))
        kern = Kernel("mm", [Loop(i, n, [Reduce(op, s[0], x[i])],
                                  parallel=True)])
        ex, prog = run(kern)
        # target starts at 0.0, which participates in the reduction
        want = ref(np.append(xv, 0.0))
        assert np.isclose(read(ex, prog, "s", 1)[0], want)

    def test_elementwise_accumulate(self):
        n = 32
        rng = np.random.default_rng(6)
        xv = rng.random(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        z = Array("z", (n,))
        kern = Kernel("acc", [
            Loop(i, n, [Reduce("+", z[i], x[i] * 3.0)], parallel=True)])
        ex, prog = run(kern)
        assert np.allclose(read(ex, prog, "z", n), xv * 3.0)


class TestMatmulAndNests:
    def test_matmul_matches_numpy(self):
        m, k, n = 6, 5, 16
        rng = np.random.default_rng(7)
        av, bv = rng.random((m, k)), rng.random((k, n))
        i, j, kk = Var("i"), Var("j"), Var("k")
        A = Array("A", (m, k), av)
        B = Array("B", (k, n), bv)
        C = Array("C", (m, n))
        kern = Kernel("mm", [
            Loop(i, m, [
                Loop(kk, k, [
                    Loop(j, n, [Reduce("+", C[i, j], A[i, kk] * B[kk, j])],
                         parallel=True)])], parallel=True)])
        ex, prog = run(kern)
        got = read(ex, prog, "C", m * n).reshape(m, n)
        assert np.allclose(got, av @ bv)

    def test_triangular_extents(self):
        n = 12
        i, j = Var("i"), Var("j")
        A = Array("A", (n, n))
        kern = Kernel("tri", [
            Loop(i, n, [
                Loop(j, i + 1, [Assign(A[i, j], Const(1.0))], parallel=True),
            ], parallel=True)])
        ex, prog = run(kern)
        got = read(ex, prog, "A", n * n).reshape(n, n)
        assert np.array_equal(got != 0, np.tril(np.ones((n, n))) != 0)


class TestThreading:
    @pytest.mark.parametrize("nt", [1, 2, 4, 8])
    def test_threaded_elementwise(self, nt):
        n = 100
        rng = np.random.default_rng(8)
        xv = rng.random(n)
        i = Var("i")
        x = Array("x", (n,), xv)
        z = Array("z", (n,))
        kern = Kernel("t", [
            Loop(i, n, [Assign(z[i], x[i] + 1.0)], parallel=True)])
        ex, prog = run(kern, CompileOptions(threads=True), num_threads=nt)
        assert np.allclose(read(ex, prog, "z", n), xv + 1.0)

    def test_serial_statement_guarded(self):
        # a serial statement between parallel loops executes once
        n = 16
        i = Var("i")
        z = Array("z", (n,))
        s = Array("s", (1,))
        kern = Kernel("g", [
            Loop(i, n, [Assign(z[i], Const(1.0))], parallel=True),
            Reduce("+", s[0], Const(1.0)),
            Loop(i, n, [Reduce("+", z[i], Const(1.0))], parallel=True),
        ])
        ex, prog = run(kern, CompileOptions(threads=True), num_threads=4)
        assert read(ex, prog, "s", 1)[0] == 1.0  # not once per thread
        assert np.allclose(read(ex, prog, "z", n), 2.0)

    def test_time_loop_runs_redundantly_with_inner_parallel(self):
        n, steps = 32, 5
        i, t = Var("i"), Var("t")
        z = Array("z", (n,))
        kern = Kernel("time", [
            Loop(t, steps, [
                Loop(i, n, [Reduce("+", z[i], Const(1.0))], parallel=True),
            ]),
        ])
        ex, prog = run(kern, CompileOptions(threads=True), num_threads=4)
        assert np.allclose(read(ex, prog, "z", n), float(steps))

    def test_vltcfg_emitted_for_threads(self):
        n = 8
        i = Var("i")
        z = Array("z", (n,))
        kern = Kernel("v", [Loop(i, n, [Assign(z[i], Const(1.0))],
                                 parallel=True)])
        prog = compile_kernel(kern, CompileOptions(threads=True))
        assert prog.instrs[0].spec.is_vltcfg

    def test_threaded_barriers_present(self):
        n = 8
        i = Var("i")
        z = Array("z", (n,))
        kern = Kernel("b", [Loop(i, n, [Assign(z[i], Const(1.0))],
                                 parallel=True)])
        prog = compile_kernel(kern, CompileOptions(threads=True))
        assert any(ins.spec.is_barrier for ins in prog.instrs)


class TestErrors:
    def test_register_pressure_detected(self):
        from repro.compiler import RegisterPressureError
        n = 8
        i = Var("i")
        arrays = [Array(f"a{k}", (n,)) for k in range(40)]
        body = [Assign(arr[i], Const(1.0)) for arr in arrays]
        kern = Kernel("big", [Loop(i, n, body, parallel=True)])
        with pytest.raises(RegisterPressureError):
            compile_kernel(kern)
