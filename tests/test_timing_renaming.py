"""Physical-vector-register renaming limits (Table 3: 64 physical)."""

from dataclasses import replace

import pytest

from repro.isa import assemble
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE


def many_independent_vops(n=40):
    ops = "\n".join(f"vfadd.vv v{1 + i % 8}, v9, v10" for i in range(n))
    return assemble(f"""
    li s9, 0
    li s10, 3
    rep:
    li s1, 64
    setvl s2, s1
    {ops}
    addi s9, s9, 1
    blt s9, s10, rep
    halt
    """)


def with_phys(n):
    return replace(BASE, name=f"base-p{n}", vu=replace(BASE.vu,
                                                       phys_vregs=n))


class TestRenaming:
    def test_default_budget_never_binds(self):
        """64 physical - 32 architectural = 32 spares >= the whole VIQ."""
        prog = many_independent_vops()
        clear_trace_cache()
        c64 = simulate(prog, with_phys(64)).cycles
        clear_trace_cache()
        c256 = simulate(prog, with_phys(256)).cycles
        assert c64 == c256

    def test_small_register_file_throttles(self):
        prog = many_independent_vops()
        clear_trace_cache()
        cfull = simulate(prog, with_phys(64)).cycles
        clear_trace_cache()
        ctiny = simulate(prog, with_phys(34)).cycles  # 2 spare registers
        assert ctiny > cfull

    def test_monotone_in_registers(self):
        prog = many_independent_vops()
        prev = None
        for n in (33, 36, 40, 64):
            clear_trace_cache()
            c = simulate(prog, with_phys(n)).cycles
            if prev is not None:
                assert c <= prev
            prev = c
