"""Instruction rendering / program listings (the disassembler surface)."""

import pytest

from repro.isa import ProgramBuilder, S, F, V, assemble, make_instr


class TestRender:
    @pytest.mark.parametrize("name,operands,want", [
        ("add", (S(1), S(2), S(3)), "add s1, s2, s3"),
        ("li", (S(1), -5), "li s1, -5"),
        ("fli", (F(2), 2.5), "fli f2, 2.5"),
        ("ld", (S(1), (16, S(2))), "ld s1, 16(s2)"),
        ("st", (S(1), (0, S(2))), "st s1, 0(s2)"),
        ("vld", (V(1), (8, S(2))), "vld v1, 8(s2)"),
        ("vlds", (V(1), (0, S(2)), S(3)), "vlds v1, 0(s2), s3"),
        ("vldx", (V(1), (0, S(2)), V(3)), "vldx v1, 0(s2), v3"),
        ("vfadd.vs", (V(1), V(2), F(3)), "vfadd.vs v1, v2, f3"),
        ("vslt.vv", (V(1), V(2)), "vslt.vv v1, v2"),
        ("vredsum", (S(1), V(2)), "vredsum s1, v2"),
        ("barrier", (), "barrier"),
        ("vltcfg", (4,), "vltcfg 4"),
    ])
    def test_roundtrippable_syntax(self, name, operands, want):
        ins = make_instr(name, operands)
        assert ins.render() == want

    def test_masked_suffix_rendered(self):
        ins = make_instr("vadd.vv", (V(1), V(2), V(3)), masked=True)
        assert ins.render() == "vadd.vv.m v1, v2, v3"

    def test_render_reassembles(self):
        cases = [
            "add s1, s2, s3", "vfadd.vs.m v1, v2, f3",
            "vsts v1, 8(s2), s3", "vstx v1, 0(s2), v3",
            "vfredsum f1, v2", "vins v1, s2, s3", "setvl s1, s2",
        ]
        for text in cases:
            prog = assemble(text + "\nhalt")
            assert prog.instrs[0].render() == text


class TestListing:
    def test_labels_interleaved(self):
        b = ProgramBuilder("l", memory_kib=64)
        b.op("li", S(1), 0)
        b.label("top")
        b.op("addi", S(1), S(1), 1)
        b.op("blt", S(1), S(2), "top")
        b.op("halt")
        listing = b.build().listing()
        lines = listing.splitlines()
        assert lines[1] == "top:"
        assert "blt s1, s2, 1" in listing  # resolved target

    def test_listing_reassembles_to_same_length(self):
        b = ProgramBuilder("r", memory_kib=64)
        b.data_f64("x", [1.0, 2.0])
        b.la(S(1), "x")
        b.op("fld", F(1), (0, S(1)))
        b.op("fadd", F(2), F(1), F(1))
        b.op("halt")
        prog = b.build()
        re = assemble(".space pad 128\n" + prog.listing())
        assert len(re.instrs) == len(prog.instrs)
        assert [i.op for i in re.instrs] == [i.op for i in prog.instrs]
