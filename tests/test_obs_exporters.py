"""Metrics registry, exporters and host-side profiling."""

import json

import pytest

from repro.isa import assemble
from repro.obs import (BANK_CONFLICT, CACHE_MISS, COMMIT, Event, Histogram,
                       ISSUE, MetricsRegistry, MetricsSink, PhaseProfiler,
                       STALL, StallReason, VISSUE, render_stall_report,
                       stall_attribution, to_chrome_trace, write_chrome_trace)
from repro.timing import simulate_traced
from repro.timing.config import BASE, V2_CMP

_VEC_SRC = """
.space x 2048
li s1, 16
setvl s2, s1
li s3, &x
li s4, 0
li s5, 4
loop:
vld v1, 0(s3)
vfadd.vv v2, v1, v1
vfmul.vs v3, v2, f1
vst v3, 0(s3)
addi s4, s4, 1
blt s4, s5, loop
halt
"""


def _dyn(op="add", pc=0, vl=0):
    from repro.functional.trace import DynOp
    from repro.isa import spec
    return DynOp(pc, op, spec(op), (), (), vl=vl)


class TestHistogram:
    def test_observe_and_moments(self):
        h = Histogram("vl")
        for v, w in ((4, 2), (8, 1), (16, 1)):
            h.observe(v, w)
        assert h.count == 4
        assert h.total == 4 * 2 + 8 + 16
        assert h.mean == pytest.approx(8.0)
        assert h.items() == [(4, 2), (8, 1), (16, 1)]

    def test_percentiles(self):
        h = Histogram("d")
        for v in (1, 2, 3, 4):
            h.observe(v)
        assert h.percentile(50) == 2
        assert h.percentile(100) == 4
        assert Histogram("empty").percentile(50) == 0


class TestMetricsSink:
    def test_folds_synthetic_events(self):
        sink = MetricsSink(timeline_bucket=100)
        sink.on_event(Event(1, ISSUE, "SU0.c0", _dyn()))
        sink.on_event(Event(2, VISSUE, "VU.p0", _dyn("vadd.vv", vl=8)))
        sink.on_event(Event(3, COMMIT, "SU0.c0", _dyn()))
        sink.on_event(Event(4, STALL, "SU0.c0", dur=7,
                            reason=StallReason.L1I_MISS))
        sink.on_event(Event(5, CACHE_MISS, "SU0.L1D", arg="SU0.L1D"))
        sink.on_event(Event(250, BANK_CONFLICT, "L2.b3", dur=2, arg=3))
        c = sink.registry.counters()
        assert c["issued.scalar"] == 1
        assert c["issued.vector"] == 1
        assert c["issued.SU0.c0"] == 1
        assert c["committed.scalar"] == 1
        assert c["stall.SU0.c0.l1i_miss"] == 7
        assert c["cache_miss.SU0.L1D"] == 1
        assert c["l2.bank_conflict_cycles"] == 2
        assert sink.registry.histogram("vl").items() == [(8, 1)]
        assert sink.conflict_timeline() == [(200, 2)]

    def test_stall_breakdown_handles_dotted_units(self):
        sink = MetricsSink()
        sink.on_event(Event(0, STALL, "SU0.c1", dur=3,
                            reason=StallReason.BRANCH_MISPREDICT))
        sink.on_event(Event(0, STALL, "SU0.c1", dur=2,
                            reason=StallReason.L1I_MISS))
        bd = sink.stall_breakdown()
        assert bd == {"SU0.c1": {"branch_mispredict": 3, "l1i_miss": 2}}

    def test_registry_as_dict_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h").observe(3)
        json.dumps(reg.as_dict())  # must not raise


class TestChromeTrace:
    def test_real_run_exports_valid_json(self, tmp_path):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE)
        out = tmp_path / "trace.json"
        n = write_chrome_trace(str(out), tr.events.events,
                               metadata={"app": "unit"})
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["app"] == "unit"
        records = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        assert len(records) == n > 0

    def test_record_shapes(self):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE)
        doc = to_chrome_trace(tr.events.events)
        by_ph = {}
        for r in doc["traceEvents"]:
            by_ph.setdefault(r["ph"], []).append(r)
        # named-thread metadata covers every tid used by records
        named = {r["tid"] for r in by_ph["M"] if r["name"] == "thread_name"}
        used = {r["tid"] for ph in ("X", "i") for r in by_ph.get(ph, [])}
        assert used <= named
        for r in by_ph["X"]:
            assert r["dur"] >= 1 and r["ts"] >= 0
        # vector issues land on per-FU rows with vl recorded
        vx = [r for r in by_ph["X"] if r["cat"] == "vissue"]
        assert vx and all(r["args"]["vl"] == 16 for r in vx)


class TestStallAttribution:
    @pytest.mark.parametrize("cfg,threads", [(BASE, 1), (V2_CMP, 2)])
    def test_reconciles_to_the_cycle(self, cfg, threads):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, cfg, num_threads=threads)
        attr = stall_attribution(tr.result)
        util = tr.result.utilization
        assert attr["totals"]["busy"] == util.busy
        assert attr["totals"]["total"] == util.total
        # partition rows + residual == aggregate, bucket by bucket
        for b in ("busy", "partly_idle", "stalled", "all_idle"):
            part_sum = sum(row[b] for row in attr["partitions"])
            assert part_sum + attr["residual"][b] == attr["totals"][b]
        assert len(attr["partitions"]) == threads

    def test_report_renders_with_metrics(self):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE)
        text = render_stall_report(tr.result)
        assert "stall attribution" in text
        assert "datapath-cycles" in text
        assert "busy" in text
        # metrics came along on result.metrics -> traced reasons section
        assert tr.result.metrics is tr.metrics

    def test_attribution_without_metrics(self):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE)
        tr.result.metrics = None
        attr = stall_attribution(tr.result)
        assert "stall_reasons" not in attr


class TestPhaseProfiler:
    def test_phases_accumulate(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            pass
        d = prof.as_dict()
        assert list(d) == ["a", "b"]
        assert d["a"]["calls"] == 2 and d["b"]["calls"] == 1
        assert prof.total_wall_s >= 0.0

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.phase("x"):
            pass
        with b.phase("x"):
            pass
        with b.phase("y"):
            pass
        a.merge(b)
        assert a.phases["x"].calls == 2
        assert a.phases["y"].calls == 1

    def test_report_text(self):
        prof = PhaseProfiler()
        assert "no phases" in prof.report()
        with prof.phase("replay"):
            pass
        assert "replay" in prof.report()


class TestSimulateTraced:
    def test_wiring(self):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE)
        assert tr.result.metrics is tr.metrics
        assert len(tr.events) > 0 and not tr.events.truncated
        phases = tr.profiler.as_dict()
        assert {"setup", "replay", "stats"} <= set(phases)

    def test_event_cap_flags_truncation(self):
        prog = assemble(_VEC_SRC)
        tr = simulate_traced(prog, BASE, max_events=10)
        assert len(tr.events) == 10 and tr.events.truncated
        # metrics keep counting past the log cap
        assert tr.metrics.counters()["issued.scalar"] > 0
