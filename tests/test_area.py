"""Area model: Tables 1-2 reproduction (exact arithmetic)."""

import pytest

from repro.area import AreaModel, COMPONENT_AREAS, table1_rows, table2_rows
from repro.area.model import PAPER_TABLE2


class TestTable1:
    def test_component_constants(self):
        c = COMPONENT_AREAS
        assert c.su_2way == 5.7
        assert c.su_4way == 20.9
        assert c.vcl_2way == 2.1
        assert c.vector_lane == 6.1
        assert c.l2_4mb == 98.4

    def test_base_processor_area(self):
        assert COMPONENT_AREAS.base_processor(8) == pytest.approx(170.2)

    def test_rows_render(self):
        rows = table1_rows()
        assert rows[-1][1] == pytest.approx(170.2)
        assert len(rows) == 6


class TestTable2:
    @pytest.mark.parametrize("name,paper", [
        ("V2-SMT", 0.8), ("V4-SMT", 1.3), ("V2-CMP", 12.3),
        ("V2-CMP-h", 3.4), ("V4-CMP-h", 10.1), ("V4-CMT", 13.8),
    ])
    def test_matches_paper_within_rounding(self, name, paper):
        m = AreaModel()
        assert m.overhead_pct(name) == pytest.approx(paper, abs=0.15)

    def test_v4cmp_matches_prose_not_table(self):
        """The paper's Table 2 (26.9%) contradicts its own prose (37%);
        the arithmetic gives 36.8%."""
        m = AreaModel()
        assert m.overhead_pct("V4-CMP") == pytest.approx(36.8, abs=0.1)
        assert PAPER_TABLE2["V4-CMP"] == 26.9  # documented discrepancy

    def test_table2_rows_carry_both(self):
        rows = table2_rows()
        names = [r[0] for r in rows]
        assert names == ["V2-SMT", "V4-SMT", "V2-CMP", "V2-CMP-h",
                         "V4-CMP", "V4-CMP-h", "V4-CMT"]
        for _, ours, paper in rows:
            assert ours > 0 and paper > 0


class TestCMTComparisons:
    def test_cmt_smaller_than_v4cmt_by_26pct(self):
        """Section 5: the CMT (no vector unit) is ~26% smaller than the
        VLT-capable V4-CMT."""
        m = AreaModel()
        ratio = 1 - m.config_area("CMT") / m.config_area("V4-CMT")
        assert ratio == pytest.approx(0.26, abs=0.01)

    def test_cmt_smaller_than_base(self):
        m = AreaModel()
        assert m.config_area("CMT") < m.base


class TestValidation:
    def test_unknown_config(self):
        with pytest.raises(KeyError):
            AreaModel().config_area("V16-MEGA")

    def test_unsupported_su_width(self):
        with pytest.raises(ValueError):
            AreaModel().su_area(8)

    def test_unsupported_smt_level(self):
        with pytest.raises(ValueError):
            AreaModel().su_area(4, 3)

    def test_smt_penalties(self):
        m = AreaModel()
        assert m.su_area(4, 2) == pytest.approx(20.9 * 1.06)
        assert m.su_area(4, 4) == pytest.approx(20.9 * 1.10)
