"""Banked L2: latencies, bank conflicts, unit-stride coalescing."""

import numpy as np
import pytest

from repro.timing.config import L2Config
from repro.timing.l2 import BankedL2


def make_l2(**kw):
    return BankedL2(L2Config(**kw))


class TestScalarAccess:
    def test_miss_then_hit_latency(self):
        l2 = make_l2()
        t1 = l2.access(0, now=0)
        assert t1 == 100                 # cold miss
        t2 = l2.access(0, now=200)
        assert t2 == 210                 # hit

    def test_bank_occupancy_serialises_same_bank(self):
        l2 = make_l2()
        cfg = l2.cfg
        same_bank = cfg.line * cfg.banks     # same bank, different line
        l2.access(0, now=0)
        t = l2.access(same_bank, now=0)
        # second access starts after the first's bank_busy
        assert t == cfg.bank_busy + cfg.miss_latency

    def test_different_banks_parallel(self):
        l2 = make_l2()
        t1 = l2.access(0, now=0)
        t2 = l2.access(64, now=0)        # next line -> next bank
        assert t1 == t2 == 100


class TestVectorAccess:
    def test_empty(self):
        l2 = make_l2()
        assert l2.vector_access(np.empty(0, dtype=np.int64), 5, 8, True) \
            == 5 + l2.cfg.hit_latency

    def test_unit_stride_coalesces_lines(self):
        l2 = make_l2()
        addrs = np.arange(64, dtype=np.int64) * 8     # 8 lines
        l2.vector_access(addrs, 0, addrs_per_cycle=8, unit_stride=True)
        assert l2.stats.vector_line_txns == 8
        assert l2.stats.vector_elements == 64

    def test_strided_pays_per_element(self):
        l2 = make_l2()
        addrs = np.arange(64, dtype=np.int64) * 128   # one per 2 lines
        l2.vector_access(addrs, 0, addrs_per_cycle=8, unit_stride=False)
        assert l2.stats.vector_line_txns == 64

    def test_large_stride_bank_conflicts(self):
        """A stride equal to banks*line maps every element to one bank."""
        l2 = make_l2()
        cfg = l2.cfg
        bad = np.arange(32, dtype=np.int64) * (cfg.banks * cfg.line)
        good = np.arange(32, dtype=np.int64) * cfg.line
        t_bad = l2.vector_access(bad, 0, 8, unit_stride=False)
        l2b = make_l2()
        t_good = l2b.vector_access(good, 0, 8, unit_stride=False)
        assert t_bad > t_good

    def test_completion_is_slowest_element(self):
        l2 = make_l2(miss_latency=50, hit_latency=5)
        addrs = np.array([0, 64], dtype=np.int64)
        t = l2.vector_access(addrs, 0, addrs_per_cycle=8, unit_stride=False)
        assert t >= 50

    def test_warm_unit_stride_is_fast(self):
        l2 = make_l2()
        addrs = np.arange(64, dtype=np.int64) * 8
        l2.vector_access(addrs, 0, 8, True)
        t = l2.vector_access(addrs, 1000, 8, True)
        # 8 lines at 1/cycle + 10-cycle hit
        assert t <= 1000 + 8 + l2.cfg.hit_latency + l2.cfg.bank_busy

    def test_fewer_lanes_generate_addresses_slower(self):
        l2a = make_l2()
        l2b = make_l2()
        addrs = np.arange(64, dtype=np.int64) * 8
        t8 = l2a.vector_access(addrs, 0, addrs_per_cycle=8, unit_stride=True)
        t1 = l2b.vector_access(addrs, 0, addrs_per_cycle=1, unit_stride=True)
        assert t1 > t8
