# Minimal trigger for the `mem-misaligned` rule: a statically-resolvable
# load 4 bytes into an 8-byte-aligned f64 array.
.program mem-misaligned
.f64 x 1.0 2.0
    li s1, &x
    ld s2, 4(s1)
    halt
