# Minimal trigger for the `setvl-negative` rule (warning): the request
# is the constant -5, which clamps to vl=0 and silently turns every
# vector op into a no-op.
.program setvl-negative
    li s1, -5
    setvl s2, s1
    halt
