# Minimal trigger for the `mask-unset` rule: the `.m` suffix makes the
# vadd read the vector mask, but no compare has written vm yet.
.program mask-unset
    li s1, 8
    setvl s2, s1
    vmv.s v1, s1
    vadd.vv.m v2, v1, v1
    halt
