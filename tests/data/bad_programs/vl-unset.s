# Minimal trigger for the `vl-unset` rule (warning): a vector load is
# reachable before any setvl, so it would run at the architectural
# default vl=MVL -- almost never what the author meant.
.program vl-unset
.f64 x 1.0 2.0 3.0 4.0
    li s1, &x
    vld v1, 0(s1)
    halt
