# Minimal trigger for the `bad-vltcfg` rule: a partition request of 100
# exceeds MVL=64.  (vltcfg 0 is legal -- it means "repartition for the
# current thread count".)
.program bad-vltcfg
    vltcfg 100
    halt
