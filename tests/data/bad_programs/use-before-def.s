# Minimal trigger for the `use-before-def` rule: s3 is read before any
# instruction writes it.  (s0 is hard-wired zero and would be fine.)
.program use-before-def
    addi s2, s3, 1
    halt
