# Minimal trigger for the `fall-off-end` rule: the branch-taken path
# runs through `end:` and off the bottom of the instruction stream --
# the halt only covers the fall-through path.
.program fall-off-end
    li s1, 1
    beq s1, s0, end
    halt
end:
    li s2, 2
