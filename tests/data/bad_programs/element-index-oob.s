# Minimal trigger for the `element-index-oob` rule: vext with a
# statically-known element index of 99, outside [0, MVL=64).
.program element-index-oob
    li s1, 8
    setvl s2, s1
    vmv.s v1, s1
    li s3, 99
    vext s4, v1, s3
    halt
