# Minimal trigger for the `unreachable-code` rule (warning): the li is
# jumped over and nothing branches back to it.
.program unreachable-code
    j end
    li s1, 1
end:
    halt
