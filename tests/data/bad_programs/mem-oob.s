# Minimal trigger for the `mem-oob` rule: a statically-resolvable
# scalar load at byte 2048 of a 1 KiB data image.
.program mem-oob
.memory 1
    li s1, 2048
    ld s2, 0(s1)
    halt
