"""The parallel experiment runner: equivalence, caching, fault capture."""

import os

import pytest

from repro.harness import experiments as E
from repro.harness.runner import (ExperimentRunner, MissingRunError, RunSpec)
from repro.timing.config import V2_CMP
from repro.timing.run import set_trace_cache_dir

_SPECS = [RunSpec("mpenc", "base", 1),
          RunSpec("mpenc", "V2-CMP", 2),
          RunSpec("mpenc", "V4-CMP", 4)]


@pytest.fixture(autouse=True)
def _no_disk_cache():
    set_trace_cache_dir(None)
    yield
    set_trace_cache_dir(None)


def _cycles(outcomes):
    return {s: o.result.cycles for s, o in outcomes.items() if o.ok}


class TestEquivalence:
    def test_parallel_matches_serial(self, tmp_path):
        serial = _cycles(ExperimentRunner(jobs=1).run(_SPECS))
        parallel = _cycles(ExperimentRunner(
            jobs=2, cache_dir=tmp_path).run(_SPECS))
        assert serial == parallel
        assert len(serial) == len(_SPECS)

    def test_warm_rerun_served_from_result_cache(self, tmp_path):
        first = ExperimentRunner(jobs=2, cache_dir=tmp_path)
        first.run(_SPECS)
        warm = ExperimentRunner(jobs=2, cache_dir=tmp_path)
        out = warm.run(_SPECS)
        assert all(o.result_cached for o in out.values())
        # zero trace regenerations, by the merged phase profile
        gen = warm.profiler.phases.get("trace_generation")
        assert gen is None or gen.calls == 0
        assert _cycles(out) == _cycles(first.outcomes)

    def test_duplicate_specs_deduped(self):
        r = ExperimentRunner(jobs=1)
        out = r.run([_SPECS[0], _SPECS[0], _SPECS[0]])
        assert len(out) == 1
        assert out[_SPECS[0]].ok

    def test_lane_swept_config_resolves_by_name(self):
        r = ExperimentRunner(jobs=1)
        out = r.run([RunSpec("mpenc", "base-2lane", 1)])
        assert out[RunSpec("mpenc", "base-2lane", 1)].ok


class TestFailureCapture:
    def test_bad_app_is_structured_failure(self):
        r = ExperimentRunner(jobs=1, retries=1)
        out = r.run([RunSpec("nosuchapp", "base", 1), _SPECS[0]])
        bad = out[RunSpec("nosuchapp", "base", 1)]
        assert not bad.ok
        assert bad.failure.error_type == "KeyError"
        assert bad.failure.attempts == 2   # initial + 1 retry
        assert "nosuchapp" in bad.failure.message
        assert bad.failure.traceback
        assert out[_SPECS[0]].ok   # the healthy spec still ran
        assert "FAILED" in r.report()

    def test_zero_timeout_rejected(self):
        # `_alarm` treats 0 as "no alarm" (signal semantics), so a
        # `timeout=0` typo used to silently run unbounded; now an error
        for bad in (0, 0.0, -1):
            with pytest.raises(ValueError, match="timeout must be > 0"):
                ExperimentRunner(timeout=bad)
        ExperimentRunner(timeout=None)   # explicit "no limit" still fine

    def test_timeout_is_captured(self):
        # 1ms: no run can build + simulate inside it, so the alarm
        # always fires (mxm end-to-end is ~30ms, close enough to 50ms
        # that a larger timeout is flaky on a fast machine)
        r = ExperimentRunner(jobs=1, retries=0, timeout=0.001)
        out = r.run([RunSpec("mxm", "base", 1)])
        f = out[RunSpec("mxm", "base", 1)].failure
        assert f is not None
        assert f.error_type == "RunTimeout"

    def test_worker_crash_quarantined(self, tmp_path, monkeypatch):
        monkeypatch.setenv("VLT_RUNNER_TEST_CRASH", "mpenc:V2-CMP")
        r = ExperimentRunner(jobs=2, cache_dir=tmp_path, retries=1)
        out = r.run(_SPECS)
        crashed = out[RunSpec("mpenc", "V2-CMP", 2)]
        assert not crashed.ok
        assert crashed.failure.error_type == "WorkerCrash"
        survivors = [s for s, o in out.items() if o.ok]
        assert len(survivors) == 2   # one bad config cannot kill the sweep
        # and the survivors' numbers match the serial reference
        monkeypatch.delenv("VLT_RUNNER_TEST_CRASH")
        serial = _cycles(ExperimentRunner(jobs=1).run(survivors))
        assert serial == {s: out[s].result.cycles for s in survivors}


class TestAlarmOffMainThread:
    def test_timeout_spec_runs_in_worker_thread(self):
        """Regression: `_alarm` used to call `signal.signal` from
        whatever thread executed the spec, which raises ValueError
        anywhere but the main thread -- every timed job submitted
        through a thread pool (the service's executor) died on arrival.
        Now it degrades to a no-op with a one-time warning."""
        import threading
        import warnings
        from concurrent.futures import ThreadPoolExecutor

        from repro.harness import runner as runner_mod
        from repro.harness.runner import _execute_spec

        old_flag = runner_mod._ALARM_THREAD_WARNED
        runner_mod._ALARM_THREAD_WARNED = False
        try:
            caught = []

            def _run():
                assert threading.current_thread() is not \
                    threading.main_thread()
                with warnings.catch_warnings(record=True) as w:
                    warnings.simplefilter("always")
                    payloads = [_execute_spec(_SPECS[0], 30.0, 50_000_000),
                                _execute_spec(_SPECS[0], 30.0, 50_000_000)]
                caught.extend(w)
                return payloads

            with ThreadPoolExecutor(max_workers=1) as pool:
                payloads = pool.submit(_run).result(timeout=300)
            for p in payloads:
                assert p.get("error") is None, p["error"]
                assert p["result"].cycles > 0
            relevant = [w for w in caught
                        if issubclass(w.category, RuntimeWarning)
                        and "main" in str(w.message)]
            assert len(relevant) == 1     # warned once, not per run
        finally:
            runner_mod._ALARM_THREAD_WARNED = old_flag

    def test_timeout_still_enforced_on_main_thread(self):
        from repro.harness.runner import _execute_spec
        p = _execute_spec(RunSpec("mxm", "base", 1), 0.001, 50_000_000)
        assert p["error"] is not None
        assert p["error"]["type"] == "RunTimeout"


class TestDriverIntegration:
    def test_driver_consumes_run_map(self):
        out = ExperimentRunner(jobs=1).run(E.fig3_matrix(("mpenc",)))
        runs = {s: o.result for s, o in out.items()}
        via_map = E.fig3_vlt_speedup(("mpenc",), runs=runs)
        inline = E.fig3_vlt_speedup(("mpenc",))
        assert via_map.cycles == inline.cycles

    def test_missing_run_raises(self):
        with pytest.raises(MissingRunError) as exc:
            E.fig3_vlt_speedup(("mpenc",), runs={})
        assert exc.value.spec.app == "mpenc"

    def test_matrix_for_dedupes_shared_base_runs(self):
        specs = E.matrix_for(["fig3", "fig5"], apps=["mpenc"])
        base = [s for s in specs if s.config == "base" and s.threads == 1]
        assert len(base) == 1   # fig3 and fig5 share the base run
        assert len(specs) == len(set(specs))

    def test_matrix_covers_all_nine_apps(self):
        specs = E.matrix_for(["fig1", "fig3", "fig4", "fig5", "fig6"])
        assert {s.app for s in specs} == set(E.ALL_APPS)

    def test_fig6_specs_are_scalar_only(self):
        assert all(s.scalar_only for s in E.fig6_matrix())


class TestWorkloadFlavourAliasing:
    """Regression: Workload.program() was order-dependent for
    non-vectorizable apps (the scalar_only=True flavour only aliased the
    base one if the base was built first)."""

    @pytest.mark.parametrize("app", ["barnes", "ocean"])
    @pytest.mark.parametrize("first", [False, True])
    def test_non_vectorizable_order_independent(self, app, first):
        from repro.workloads.base import _REGISTRY
        w = _REGISTRY[app]()   # fresh instance: order under our control
        assert w.vectorizable is False
        a = w.program(scalar_only=first)
        b = w.program(scalar_only=not first)
        assert a is b   # one flavour, whichever order was requested

    def test_vectorizable_flavours_distinct(self):
        from repro.workloads import get_workload
        w = get_workload("radix")   # radix has a real scalar flavour
        vec = w.program(scalar_only=False)
        sca = w.program(scalar_only=True)
        assert vec is not sca
        assert vec.digest() != sca.digest()
