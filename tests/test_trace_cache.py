"""Content-keyed trace memoisation and the on-disk cache."""

import gc

import pytest

from repro.functional import TraceCache
from repro.functional.trace_cache import result_key
from repro.isa import assemble
from repro.obs.hostprof import PhaseProfiler
from repro.timing import clear_trace_cache, simulate, trace_for
from repro.timing.config import BASE
from repro.timing.run import (get_trace_cache, set_trace_cache_dir)

_SRC_A = """
.space x 512
li s1, 8
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfadd.vv v2, v1, v1
vst v2, 0(s3)
halt
"""

_SRC_B = _SRC_A.replace("vfadd.vv", "vfmul.vv")


@pytest.fixture(autouse=True)
def _no_disk_cache():
    """These tests manage the disk cache explicitly."""
    set_trace_cache_dir(None)
    yield
    set_trace_cache_dir(None)


class TestContentKeyedMemo:
    def test_equal_content_shares_one_trace(self):
        t1 = trace_for(assemble(_SRC_A), 1)
        t2 = trace_for(assemble(_SRC_A), 1)
        assert t1 is t2

    def test_different_content_distinct_traces(self):
        assert trace_for(assemble(_SRC_A), 1) is not \
            trace_for(assemble(_SRC_B), 1)

    def test_build_drop_rebuild_no_aliasing(self):
        """Regression for the id(program) memo key: dropping a program
        and building a *different* one (whose id may be reused) must not
        serve the old program's trace."""
        histograms = []
        for src in (_SRC_A, _SRC_B, _SRC_A, _SRC_B):
            prog = assemble(src)
            trace = trace_for(prog, 1)
            histograms.append(trace.merged_opcode_histogram())
            del prog, trace
            gc.collect()   # maximise id reuse under the old scheme
        assert histograms[0] == histograms[2]
        assert histograms[1] == histograms[3]
        assert "vfadd.vv" in histograms[0]
        assert "vfadd.vv" not in histograms[1]
        assert "vfmul.vv" in histograms[1]

    def test_thread_count_part_of_key(self):
        prog = assemble(_SRC_A + "\n")   # identical content, new object
        assert trace_for(prog, 1) is not trace_for(prog, 2)


class TestDiskCache:
    def test_cold_store_warm_load(self, tmp_path):
        cache = set_trace_cache_dir(tmp_path)
        prof = PhaseProfiler()
        trace_for(assemble(_SRC_A), 1, profiler=prof)
        assert cache.trace_stores == 1
        assert prof.phases["trace_generation"].calls == 1

        # a fresh process is simulated by dropping the in-process memo
        clear_trace_cache()
        prof2 = PhaseProfiler()
        trace = trace_for(assemble(_SRC_A), 1, profiler=prof2)
        assert cache.trace_hits == 1
        assert "trace_generation" not in prof2.phases
        assert prof2.phases["trace_cache_load"].calls == 1
        assert trace.merged_opcode_histogram()["vfadd.vv"] > 0

    def test_disk_trace_replays_identically(self, tmp_path):
        set_trace_cache_dir(tmp_path)
        prog = assemble(_SRC_A)
        cold = simulate(prog, BASE).cycles
        clear_trace_cache()
        warm = simulate(assemble(_SRC_A), BASE).cycles
        assert cold == warm

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = set_trace_cache_dir(tmp_path)
        prog = assemble(_SRC_A)
        trace_for(prog, 1)
        path = cache.trace_path(prog.digest(), 1)
        path.write_bytes(b"not an npz file")
        clear_trace_cache()
        trace = trace_for(assemble(_SRC_A), 1)
        assert cache.trace_misses >= 1
        assert trace.total_ops() > 0
        # the regenerated trace was re-stored over the corrupt entry
        assert cache.trace_stores == 2

    def test_result_cache_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path)
        prog = assemble(_SRC_A)
        result = simulate(prog, BASE)
        key = result_key(prog.digest(), BASE.digest(), 1, 50_000_000)
        cache.store_result(key, result)
        loaded = cache.load_result(key)
        assert loaded.cycles == result.cycles
        assert cache.load_result("0" * 64) is None
        assert cache.result_misses == 1

    def test_orphan_tmp_files_counted_and_swept(self, tmp_path):
        # a writer killed mid-`_atomic_write` leaves `<name>.tmpXXXX`
        # behind; the census must not count it as an entry, and the
        # sweep must remove stale ones while sparing fresh ones
        import os
        import time
        cache = TraceCache(tmp_path)
        prog = assemble(_SRC_A)
        cache.store_trace(prog.digest(), 1, trace_for(prog, 1))
        tdir = tmp_path / "traces" / prog.digest()[:2]
        stale = tdir / "deadbeef.trace.npz.tmpk3j2"
        stale.write_bytes(b"partial")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = tmp_path / "results" / "aa" / "bb.result.pkl.tmpq8x1"
        fresh.parent.mkdir(parents=True)
        fresh.write_bytes(b"in flight")

        s = cache.stats()
        assert s["traces"]["entries"] == 1          # tmp is not an entry
        assert s["traces"]["orphan_tmp_files"] == 1
        assert s["results"]["orphan_tmp_files"] == 1

        assert cache.sweep_orphans(min_age_s=3600) == 1
        assert not stale.exists()
        assert fresh.exists()                       # may be a live writer
        assert cache.stats()["traces"]["orphan_tmp_files"] == 0

    def test_stats_and_clear(self, tmp_path):
        cache = set_trace_cache_dir(tmp_path)
        trace_for(assemble(_SRC_A), 1)
        trace_for(assemble(_SRC_B), 1)
        s = cache.stats()
        assert s["traces"]["entries"] == 2
        assert s["traces"]["bytes"] > 0
        assert s["counters"]["trace_stores"] == 2
        assert cache.clear() == 2
        assert cache.stats()["traces"]["entries"] == 0


class TestLazySweep:
    def test_init_does_no_sweep_io(self, tmp_path):
        """Opening a cache must not walk/mutate the tree: long-lived
        attachers (service workers, pool children) would otherwise
        re-sweep a huge shared cache on every startup."""
        import os
        import time
        first = TraceCache(tmp_path)
        prog = assemble(_SRC_A)
        first.store_trace(prog.digest(), 1, trace_for(prog, 1))
        stale = tmp_path / "traces" / "aa" / "dead.trace.npz.tmpzz"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"partial")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))

        TraceCache(tmp_path)                      # default: lazy
        assert stale.exists()                     # no sweep I/O happened

        TraceCache(tmp_path, sweep_on_init=True)  # CLI entry points
        assert not stale.exists()

    def test_cli_cache_dir_keeps_startup_sweep(self, tmp_path):
        """`set_trace_cache_dir(..., sweep=True)` is the CLI's historic
        behaviour; the default stays lazy for embedded users."""
        import os
        import time
        stale = tmp_path / "results" / "aa" / "x.result.pkl.tmpq1"
        stale.parent.mkdir(parents=True)
        stale.write_bytes(b"partial")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        set_trace_cache_dir(tmp_path)             # embedded: lazy
        assert stale.exists()
        set_trace_cache_dir(tmp_path, sweep=True)
        assert not stale.exists()


class TestBudgetEviction:
    def _entry(self, cache, src, age_s):
        import os
        import time
        prog = assemble(src)
        path = cache.store_trace(prog.digest(), 1, trace_for(prog, 1))
        t = time.time() - age_s
        os.utime(path, (t, t))
        return prog, path

    def test_lru_eviction_to_budget(self, tmp_path):
        cache = TraceCache(tmp_path)
        _, old = self._entry(cache, _SRC_A, age_s=600)
        _, new = self._entry(cache, _SRC_B, age_s=60)
        budget = new.stat().st_size          # room for exactly one
        assert cache.enforce_budget(budget) == 1
        assert not old.exists()              # oldest went first
        assert new.exists()
        assert cache.disk_usage() <= budget
        assert cache.counters()["evictions"] == 1

    def test_hits_refresh_recency(self, tmp_path):
        cache = TraceCache(tmp_path)
        prog_a, path_a = self._entry(cache, _SRC_A, age_s=600)
        _, path_b = self._entry(cache, _SRC_B, age_s=300)
        # a hit on the older entry bumps it to most-recently-used
        assert cache.load_trace(prog_a.digest(), 1) is not None
        assert cache.enforce_budget(path_a.stat().st_size) >= 1
        assert path_a.exists()
        assert not path_b.exists()

    def test_budget_zero_and_negative(self, tmp_path):
        cache = TraceCache(tmp_path)
        self._entry(cache, _SRC_A, age_s=60)
        with pytest.raises(ValueError):
            cache.enforce_budget(-1)
        assert cache.enforce_budget(0) == 1
        assert cache.disk_usage() == 0


class TestDefaultProfiler:
    def test_fallback_profiler_counts_unprofiled_calls(self):
        from repro.timing.run import set_default_profiler
        prof = PhaseProfiler()
        set_default_profiler(prof)
        try:
            simulate(assemble(_SRC_A), BASE)   # no profiler argument
        finally:
            set_default_profiler(None)
        assert prof.phases["trace_generation"].calls == 1
        assert prof.phases["replay"].calls == 1
