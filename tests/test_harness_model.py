"""The Section 7.1 analytical speedup model."""

import pytest

from repro.harness.model import (SpeedupBand, amdahl,
                                 lanes_used_by_one_thread, predicted_band)


class TestAmdahl:
    def test_full_opportunity(self):
        assert amdahl(1.0, 4) == pytest.approx(4.0)

    def test_no_opportunity(self):
        assert amdahl(0.0, 100) == pytest.approx(1.0)

    def test_paper_mpenc_numbers(self):
        """78% opportunity, parallel speedup 2..4 -> overall ~1.6..2.4."""
        assert amdahl(0.78, 2) == pytest.approx(1.64, abs=0.02)
        assert amdahl(0.78, 4) == pytest.approx(2.40, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl(1.5, 2)
        with pytest.raises(ValueError):
            amdahl(0.5, 0)


class TestLanesUsed:
    def test_long_vectors_use_all_lanes(self):
        assert lanes_used_by_one_thread(64, 8) == pytest.approx(8.0)

    def test_paper_mpenc_reading(self):
        """avg VL 11 -> '2 to 4 lanes efficiently used' (paper 7.1)."""
        used = lanes_used_by_one_thread(11.2, 8)
        assert 2.0 <= used <= 6.0

    def test_tiny_vectors(self):
        assert lanes_used_by_one_thread(4, 8) == pytest.approx(4.0)

    def test_degenerate(self):
        assert lanes_used_by_one_thread(0, 8) == 1.0


class TestBand:
    def test_band_ordering_and_membership(self):
        band = predicted_band(78, 11.2, threads=4)
        assert band.low < band.high
        assert (band.low + band.high) / 2 in band
        assert band.high + 1 not in band

    def test_paper_mpenc_band_contains_measured(self):
        """The paper measured mpenc at 1.8 with 4 threads."""
        band = predicted_band(78, 11.2, threads=4)
        assert 1.8 in band.widened(0.15)

    def test_widened(self):
        band = SpeedupBand(1.0, 2.0).widened(0.1)
        assert band.low == pytest.approx(0.9)
        assert band.high == pytest.approx(2.2)


class TestModelVsSimulation:
    @pytest.mark.parametrize("name", ["mpenc", "trfd", "multprec", "bt"])
    def test_measured_speedup_within_model_band(self, name):
        from repro.timing import simulate
        from repro.timing.config import BASE, V4_CMP
        from repro.workloads import characterize, get_workload
        c = characterize(name)
        w = get_workload(name)
        prog = w.program()
        base = simulate(prog, BASE, num_threads=1).cycles
        vlt = simulate(prog, V4_CMP, num_threads=4).cycles
        measured = base / vlt
        band = predicted_band(c.pct_opportunity, c.avg_vl,
                              threads=4).widened(0.30)
        assert measured in band, (name, measured, band)
