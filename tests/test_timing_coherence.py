"""L1/L2 coherence (paper Section 2) and the lsync memory fence."""

import pytest

from repro.isa import assemble, spec
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE, V2_CMP
from repro.timing.machine import Machine
from repro.timing.run import trace_for


def machine_for(src, cfg=BASE, nt=1):
    prog = assemble(src)
    tr = trace_for(prog, nt)
    return Machine(cfg, [t.ops for t in tr.threads])


class TestVectorStoreInvalidatesL1:
    def test_scalar_reload_misses_after_vector_store(self):
        # scalar load warms the L1 line; a vector store to the same line
        # must invalidate it, so the scalar reload misses again
        src = """
        .space x 512
        li s1, &x
        ld s2, 0(s1)          # warm the line
        li s3, 8
        setvl s4, s3
        vmv.s v1, s3
        vst v1, 0(s1)         # vector store hits the same line
        lsync
        ld s5, 0(s1)          # must miss (invalidated)
        halt
        """
        m = machine_for(src)
        m.run()
        su = m.sus[0]
        assert su.stats.l1d_accesses == 2
        assert su.stats.l1d_misses == 2

    def test_no_spurious_invalidation_of_other_lines(self):
        src = """
        .space x 512
        .space y 512
        li s1, &x
        li s6, &y
        ld s2, 0(s6)          # warm y's line
        li s3, 8
        setvl s4, s3
        vmv.s v1, s3
        vst v1, 0(s1)         # store to x only
        lsync
        ld s5, 0(s6)          # y still cached: hit
        halt
        """
        m = machine_for(src)
        m.run()
        su = m.sus[0]
        assert su.stats.l1d_misses == 1


class TestPeerStoreInvalidation:
    def test_peer_su_store_invalidates(self):
        # thread 0 (SU0) warms a line; thread 1 (SU1) stores to it;
        # thread 0's reload must miss
        src = """
        .space x 512
        tid s1
        li s2, &x
        bne s1, s0, writer
        ld s3, 0(s2)          # t0 warms SU0's L1
        barrier
        barrier
        ld s4, 0(s2)          # must miss: SU1 wrote the line
        halt
        writer:
        barrier
        li s5, 7
        st s5, 0(s2)
        barrier
        halt
        """
        m = machine_for(src, cfg=V2_CMP, nt=2)
        m.run()
        su0 = m.sus[0]
        assert su0.stats.l1d_accesses == 2
        assert su0.stats.l1d_misses == 2

    def test_own_store_keeps_line(self):
        src = """
        .space x 512
        li s1, &x
        li s2, 7
        st s2, 0(s1)
        ld s3, 0(s1)          # own store allocated the line: hit
        halt
        """
        m = machine_for(src)
        m.run()
        su = m.sus[0]
        assert su.stats.l1d_misses == 1  # only the store's cold miss


class TestLsync:
    def test_opcode_registered(self):
        s = spec("lsync")
        assert s.is_lsync and s.sig == ()

    def test_lsync_orders_after_vector_completion(self):
        # without lsync the trailing scalar work ends immediately; with
        # it, fetch holds until the (slow, strided) vector store drains
        body = """
        .space x 65536
        li s1, 64
        setvl s2, s1
        li s3, &x
        li s4, 1024
        vmv.s v1, s1
        vsts v1, 0(s3), s4
        {fence}
        li s5, 1
        halt
        """
        clear_trace_cache()
        without = simulate(assemble(body.format(fence="nop"),
                                    memory_kib=128), BASE)
        clear_trace_cache()
        withf = simulate(assemble(body.format(fence="lsync"),
                                  memory_kib=128), BASE)
        # both runs end after the store drains (machine waits for the
        # VU), but the fenced version must not be *faster*
        assert withf.cycles >= without.cycles

    def test_lsync_noop_without_vector_work(self):
        prog = assemble("lsync\nlsync\nli s1, 1\nhalt")
        r = simulate(prog, BASE)
        assert r.cycles < 40
