"""Completeness: every opcode in the registry executes functionally AND
passes through the timing simulator without error.

This is a smoke sweep, not a semantics test (semantics are covered
per-family elsewhere): for each opcode we synthesise one valid instance
from its signature, run it in a tiny program, and time it on the base
machine and -- for scalar ops -- on a lane core.
"""

import numpy as np
import pytest

from repro.functional import Executor
from repro.isa import F, ProgramBuilder, S, V, all_opcodes, spec
from repro.timing import clear_trace_cache, simulate
from repro.timing.config import BASE, VLT_SCALAR

#: opcodes needing special sequencing, exercised in dedicated tests
_SPECIAL = {"halt", "barrier", "j", "jal", "jr", "beq", "bne", "blt",
            "bge", "vltcfg"}


def _operand_for(kind: str, s, b: ProgramBuilder):
    if kind in ("sd", "ss"):
        return S(5)
    if kind in ("fd", "fs"):
        return F(5)
    if kind in ("vd", "vs"):
        return V(5)
    if kind == "imm":
        return 3.0 if s.name == "fli" else 3
    if kind == "mem":
        return (0, S(2))
    raise AssertionError(kind)


def build_single(name: str) -> ProgramBuilder:
    s = spec(name)
    vectorish = s.is_vector or s.writes_vl
    b = ProgramBuilder(f"cov_{name}", memory_kib=64)
    b.data_i64("buf", np.arange(128, dtype=np.int64) * 8)  # doubles as idx
    b.la(S(2), "buf")
    b.op("li", S(5), 2)
    b.op("fli", F(5), 2.0)
    b.op("li", S(6), 8)
    if vectorish:
        b.op("setvl", S(7), S(6))
        b.op("vmv.s", V(5), S(5))
    if s.mem_indexed:
        # in-range byte offsets for gather/scatter
        b.op("li", S(8), 64)
        b.op("vmv.s", V(6), S(8))
    operands = []
    for kind in s.sig:
        if kind == "vmd":
            continue
        if kind == "ss" and s.mem_stride and any(k == "mem" for k in s.sig) \
                and operands and isinstance(operands[-1], tuple) \
                and not isinstance(operands[-1][0], str):
            operands.append(S(6))  # stride register (8 bytes)
            continue
        operands.append(_operand_for(kind, s, b))
    if s.mem_indexed:
        # replace the trailing vector operand with the index register
        operands[-1] = V(6)
    b.op(name, *operands)
    b.op("halt")
    return b


ORDINARY = [n for n in all_opcodes() if n not in _SPECIAL]


@pytest.mark.parametrize("name", ORDINARY)
def test_opcode_functional_and_timed(name):
    prog = build_single(name).build()
    ex = Executor(prog)
    ex.run()  # must not raise
    clear_trace_cache()
    r = simulate(prog, BASE)
    assert r.cycles > 0


SCALAR_ONLY = [n for n in ORDINARY
               if not spec(n).is_vector and not spec(n).writes_vl]


@pytest.mark.parametrize("name", SCALAR_ONLY)
def test_scalar_opcode_on_lane_core(name):
    prog = build_single(name).build()
    clear_trace_cache()
    r = simulate(prog, VLT_SCALAR)
    assert r.cycles > 0
