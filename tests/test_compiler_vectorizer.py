"""Vectorizer legality and the VL-vs-stride interchange policy."""

import pytest

from repro.compiler import (POLICY_NAMES, Array, Assign, Const, Kernel, Loop,
                            Reduce, Var, VectorizationError, VectPolicy,
                            body_vectorizable, choose_vector_loop)


def elementwise(n=16, parallel=True):
    i = Var("i")
    x, y = Array("x", (n,)), Array("y", (n,))
    return Loop(i, n, [Assign(y[i], x[i] * 2.0)], parallel=parallel), i


class TestLegality:
    def test_parallel_elementwise_ok(self):
        loop, _ = elementwise()
        assert body_vectorizable(loop) is None

    def test_non_parallel_rejected(self):
        loop, _ = elementwise(parallel=False)
        assert "not marked parallel" in body_vectorizable(loop)

    def test_pure_reduction_ok_without_parallel(self):
        i = Var("i")
        x = Array("x", (8,))
        s = Array("s", (1,))
        loop = Loop(i, 8, [Reduce("+", s[0], x[i])], parallel=False)
        assert body_vectorizable(loop) is None

    def test_invariant_assignment_target_rejected(self):
        i = Var("i")
        x = Array("x", (8,))
        s = Array("s", (1,))
        loop = Loop(i, 8, [Assign(s[0], x[i])], parallel=True)
        assert "output dependence" in body_vectorizable(loop)

    def test_outer_loop_not_innermost(self):
        inner, i = elementwise()
        j = Var("j")
        outer = Loop(j, 4, [inner], parallel=True)
        assert body_vectorizable(outer) == "not innermost"


class TestSelection:
    def _nest(self, n_outer, n_inner, outer_stride_one=False):
        """A 2-deep parallel nest over a matrix; by construction the
        inner loop is unit-stride unless ``outer_stride_one``."""
        i, j = Var("i"), Var("j")
        A = Array("A", (max(n_outer, n_inner), max(n_outer, n_inner)))
        B = Array("B", (max(n_outer, n_inner), max(n_outer, n_inner)))
        if outer_stride_one:
            body = [Assign(B[j, i], A[j, i] + 1.0)]   # unit stride in i
        else:
            body = [Assign(B[i, j], A[i, j] + 1.0)]   # unit stride in j
        inner = Loop(j, n_inner, body, parallel=True)
        outer = Loop(i, n_outer, [inner], parallel=True)
        return Kernel("nest", [outer]), outer, inner, i, j

    def test_innermost_policy_never_interchanges(self):
        kern, outer, inner, i, j = self._nest(64, 8)
        chosen = choose_vector_loop(kern, "innermost")
        assert chosen == [inner]
        assert inner.var is j

    def test_maxvl_interchanges_for_longer_vectors(self):
        kern, outer, inner, i, j = self._nest(64, 8)
        choose_vector_loop(kern, "maxvl")
        # the 64-iteration loop is now innermost (vectorized)
        assert inner.var is i
        assert inner.extent == 64

    def test_maxvl_keeps_inner_when_already_longest(self):
        kern, outer, inner, i, j = self._nest(8, 64)
        choose_vector_loop(kern, "maxvl")
        assert inner.var is j

    def test_unitstride_prefers_stride_one(self):
        # inner loop short but unit-stride; outer long but strided:
        # unitstride policy keeps the inner loop
        kern, outer, inner, i, j = self._nest(64, 8)
        choose_vector_loop(kern, "unitstride")
        assert inner.var is j

    def test_unitstride_interchanges_when_outer_is_contiguous(self):
        kern, outer, inner, i, j = self._nest(8, 64, outer_stride_one=True)
        choose_vector_loop(kern, "unitstride")
        assert inner.var is i

    def test_unknown_policy_rejected(self):
        kern, *_ = self._nest(8, 8)
        with pytest.raises(VectorizationError, match="fastest"):
            choose_vector_loop(kern, "fastest")

    def test_policy_enum_accepted(self):
        kern, outer, inner, i, j = self._nest(8, 64)
        chosen = choose_vector_loop(kern, VectPolicy.MAXVL)
        assert chosen == [inner] and inner.var is j

    def test_policy_parse_roundtrip(self):
        for name in POLICY_NAMES:
            assert VectPolicy.parse(name).value == name
            assert VectPolicy.parse(VectPolicy(name)) is VectPolicy(name)
        with pytest.raises(VectorizationError, match="unknown"):
            VectPolicy.parse("speculative")

    def test_imperfect_nest_not_interchanged(self):
        i, j = Var("i"), Var("j")
        A = Array("A", (64, 64))
        s = Array("s", (64, 1))
        inner = Loop(j, 8, [Assign(A[i, j], Const(1.0))], parallel=True)
        outer = Loop(i, 64, [inner,
                             Assign(s[i, 0], Const(0.0))], parallel=True)
        kern = Kernel("imp", [outer])
        choose_vector_loop(kern, "maxvl")
        assert inner.var is j     # no interchange possible

    def test_triangular_extent_not_interchanged(self):
        i, j = Var("i"), Var("j")
        A = Array("A", (32, 40))
        inner = Loop(j, i + 4, [Assign(A[i, j], Const(1.0))], parallel=True)
        outer = Loop(i, 32, [inner], parallel=True)
        kern = Kernel("tri", [outer])
        chosen = choose_vector_loop(kern, "maxvl")
        assert chosen == [inner]
        assert inner.var is j     # dynamic extents block interchange
