"""Program content digests and the columnar trace (de)serialization."""

import numpy as np
import pytest

from repro.functional import (TRACE_FORMAT_VERSION, Executor, load_trace,
                              save_trace, trace_from_bytes, trace_to_bytes)
from repro.isa import assemble

_SRC = """
.space x 1024
tid s9
vltcfg 2
li s1, 16
setvl s2, s1
li s3, &x
vld v1, 0(s3)
vfadd.vv v2, v1, v1
vst v2, 0(s3)
li s4, 0
li s5, 3
loop:
addi s4, s4, 1
blt s4, s5, loop
barrier
halt
"""


def _trace(src=_SRC, num_threads=2):
    prog = assemble(src)
    return Executor(prog, num_threads=num_threads, record_trace=True).run()


class TestProgramDigest:
    def test_stable_across_rebuilds(self):
        d1 = assemble(_SRC).digest()
        d2 = assemble(_SRC).digest()
        assert d1 == d2
        assert len(d1) == 64  # hex sha256

    def test_differs_on_content_change(self):
        other = _SRC.replace("li s1, 16", "li s1, 32")
        assert assemble(_SRC).digest() != assemble(other).digest()

    def test_differs_on_data_image_change(self):
        a = assemble(".i64 w 7\nhalt\n")
        b = assemble(".i64 w 8\nhalt\n")
        assert a.digest() != b.digest()

    def test_requires_finalized(self):
        from repro.isa.program import Program
        with pytest.raises(ValueError):
            Program(name="p", memory_bytes=1024).digest()

    def test_memoised(self):
        prog = assemble(_SRC)
        assert prog.digest() is prog.digest()


class TestTraceRoundtrip:
    def _assert_equal(self, a, b):
        assert a.program_name == b.program_name
        assert a.num_threads == b.num_threads
        assert len(a.threads) == len(b.threads)
        for ta, tb in zip(a.threads, b.threads):
            assert ta.tid == tb.tid
            assert len(ta.ops) == len(tb.ops)
            for oa, ob in zip(ta.ops, tb.ops):
                assert oa.pc == ob.pc
                assert oa.op == ob.op
                assert oa.spec is ob.spec  # interned OpSpec identity
                assert oa.reads == ob.reads
                assert oa.writes == ob.writes
                assert oa.vl == ob.vl
                assert oa.taken == ob.taken
                assert oa.tgt == ob.tgt
                assert oa.imm == ob.imm
                if oa.addrs is None:
                    assert ob.addrs is None
                else:
                    assert np.array_equal(oa.addrs, ob.addrs)

    def test_bytes_roundtrip_field_exact(self):
        trace = _trace()
        self._assert_equal(trace, trace_from_bytes(trace_to_bytes(trace)))

    def test_file_roundtrip(self, tmp_path):
        trace = _trace()
        path = tmp_path / "t.trace.npz"
        save_trace(trace, path)
        self._assert_equal(trace, load_trace(path))

    def test_roundtrip_replays_to_identical_cycles(self):
        from repro.timing import simulate
        from repro.timing.config import V2_CMP
        prog = assemble(_SRC)
        trace = _trace()
        direct = simulate(prog, V2_CMP, num_threads=2, trace=trace)
        loaded = trace_from_bytes(trace_to_bytes(trace))
        replayed = simulate(prog, V2_CMP, num_threads=2, trace=loaded)
        assert direct.cycles == replayed.cycles

    def test_version_mismatch_rejected(self, monkeypatch):
        from repro.functional import trace as T
        data = trace_to_bytes(_trace())
        monkeypatch.setattr(T, "TRACE_FORMAT_VERSION",
                            TRACE_FORMAT_VERSION + 1)
        with pytest.raises(ValueError):
            T.trace_from_bytes(data)

    def test_scalar_only_trace(self):
        trace = _trace("li s1, 5\nli s2, 7\nadd s3, s1, s2\nhalt\n",
                       num_threads=1)
        self._assert_equal(trace, trace_from_bytes(trace_to_bytes(trace)))
